/**
 * @file
 * Tests of the cache-slice partitioner and shard-major execution:
 * PartitionPlan structural invariants (every edge exactly once, halo
 * lists = exact cross-shard fan-in, id round-trips), validate()'s
 * corruption detection, bit-parity of exact shard-major kernels vs the
 * global ones across models x precision x K, delayed-halo tolerance and
 * gather-byte accounting, the simulated DRAM-traffic win of the
 * shard-major order, and end-to-end training parity.
 */

#include <algorithm>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "gnn/gnn_model.h"
#include "gnn/trainer.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/partition/partition_stats.h"
#include "graph/partition/partitioner.h"
#include "kernels/shard_exec.h"
#include "obs/metrics.h"
#include "sim/machine.h"
#include "sim/workloads.h"
#include "tensor/gemm_plan.h"

namespace graphite {
namespace {

CsrGraph
makeTestGraph(int which)
{
    switch (which) {
      case 0: {
        RmatParams params;
        params.scale = 9;
        params.avgDegree = 8.0;
        return generateRmat(params);
      }
      case 1: {
        CommunityParams params;
        params.numVertices = 512;
        params.communitySize = 64;
        return generateCommunityGraph(params);
      }
      case 2:
        return generateRing(256, 2);
      default:
        return generateBarabasiAlbert(500, 4, 9);
    }
}

PartitionPlan
planFor(const CsrGraph &graph, std::size_t k,
        PartitionStrategy strategy = PartitionStrategy::Greedy)
{
    PartitionConfig config;
    config.numShards = k;
    config.strategy = strategy;
    return makePartitionPlan(graph, config);
}

void
expectBitEqual(const DenseMatrix &a, const DenseMatrix &b)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (std::size_t r = 0; r < a.rows(); ++r) {
        const Feature *ra = a.row(r);
        const Feature *rb = b.row(r);
        for (std::size_t c = 0; c < a.cols(); ++c)
            ASSERT_EQ(ra[c], rb[c]) << "row " << r << " col " << c;
    }
}

void
expectNear(const DenseMatrix &a, const DenseMatrix &b, float tol)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (std::size_t r = 0; r < a.rows(); ++r) {
        const Feature *ra = a.row(r);
        const Feature *rb = b.row(r);
        for (std::size_t c = 0; c < a.cols(); ++c)
            ASSERT_NEAR(ra[c], rb[c], tol) << "row " << r << " col " << c;
    }
}

class PlanOnGraphs
    : public testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(PlanOnGraphs, ValidatesForBothStrategies)
{
    const auto [graphIdx, k] = GetParam();
    CsrGraph g = makeTestGraph(graphIdx);
    for (PartitionStrategy strategy :
         {PartitionStrategy::Greedy, PartitionStrategy::Hash}) {
        PartitionPlan plan = planFor(g, k, strategy);
        EXPECT_EQ(plan.validate(), nullptr)
            << "K=" << k << " " << partitionStrategyName(strategy)
            << ": " << plan.validate();
        EXPECT_EQ(plan.numShards(), static_cast<std::size_t>(k));
        // Edge accounting: intra + cut tile |E|.
        EdgeId intra = 0;
        VertexId owned = 0;
        for (const Shard &shard : plan.shards) {
            intra += shard.intraEdges;
            owned += shard.numOwned;
        }
        EXPECT_EQ(owned, g.numVertices());
        EXPECT_EQ(intra + plan.totalCutEdges(), g.numEdges());
        if (k == 1) {
            EXPECT_EQ(plan.totalCutEdges(), 0u);
            EXPECT_EQ(plan.totalHaloVertices(), 0u);
        }
    }
}

TEST_P(PlanOnGraphs, HaloListsAreExactCrossShardFanIn)
{
    const auto [graphIdx, k] = GetParam();
    CsrGraph g = makeTestGraph(graphIdx);
    PartitionPlan plan = planFor(g, k);
    ASSERT_EQ(plan.validate(), nullptr) << plan.validate();
    // Global -> local id round trip.
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        const Shard &shard = plan.shards[plan.shardOf[v]];
        ASSERT_LT(plan.localIdOf[v], shard.numOwned);
        EXPECT_EQ(shard.vertices[plan.localIdOf[v]], v);
    }
    // Each shard's halo must be exactly the set of cross-shard
    // neighbors its owned vertices pull from.
    for (std::size_t s = 0; s < plan.numShards(); ++s) {
        const Shard &shard = plan.shards[s];
        std::set<VertexId> expected;
        for (VertexId r = 0; r < shard.numOwned; ++r) {
            for (VertexId u : g.neighbors(shard.vertices[r])) {
                if (plan.shardOf[u] != s)
                    expected.insert(u);
            }
        }
        std::set<VertexId> actual(shard.halo().begin(),
                                  shard.halo().end());
        EXPECT_EQ(actual, expected) << "shard " << s;
    }
}

INSTANTIATE_TEST_SUITE_P(Graphs, PlanOnGraphs,
                         testing::Combine(testing::Values(0, 1, 2, 3),
                                          testing::Values(1, 2, 4, 8)));

TEST(PartitionPlan, EmptyGraphAndMoreShardsThanVertices)
{
    CsrGraph empty({0}, {});
    PartitionPlan plan = planFor(empty, 4);
    EXPECT_EQ(plan.validate(), nullptr) << plan.validate();
    EXPECT_EQ(plan.shardMajorOrder.size(), 0u);

    CsrGraph tiny = generateRing(4);
    PartitionPlan wide = planFor(tiny, 8);
    EXPECT_EQ(wide.validate(), nullptr) << wide.validate();
    VertexId owned = 0;
    for (const Shard &shard : wide.shards)
        owned += shard.numOwned;
    EXPECT_EQ(owned, 4u);
}

TEST(PartitionPlan, ValidateDetectsCorruption)
{
    CsrGraph g = makeTestGraph(0);
    {
        PartitionPlan plan = planFor(g, 4);
        ASSERT_EQ(plan.validate(), nullptr);
        // Move a vertex to another shard in the map only.
        plan.shardOf[plan.shards[0].vertices[0]] = 1;
        EXPECT_NE(plan.validate(), nullptr);
    }
    {
        PartitionPlan plan = planFor(g, 4);
        ASSERT_GE(plan.shards[0].numOwned, 2u);
        // Swap two local ids: the round trip breaks.
        std::swap(plan.localIdOf[plan.shards[0].vertices[0]],
                  plan.localIdOf[plan.shards[0].vertices[1]]);
        EXPECT_NE(plan.validate(), nullptr);
    }
    {
        PartitionPlan plan = planFor(g, 4);
        // Swap two order entries across shard boundaries.
        std::swap(plan.shardMajorOrder.front(),
                  plan.shardMajorOrder.back());
        EXPECT_NE(plan.validate(), nullptr);
    }
    {
        PartitionPlan plan = planFor(g, 4);
        plan.shards[0].intraEdges += 1;
        EXPECT_NE(plan.validate(), nullptr);
    }
}

TEST(PartitionStats, GreedyBeatsHashOnCommunityGraph)
{
    CsrGraph g = makeTestGraph(1);
    PartitionPlan greedy = planFor(g, 4, PartitionStrategy::Greedy);
    PartitionPlan hash = planFor(g, 4, PartitionStrategy::Hash);
    const PartitionStats gs = computePartitionStats(greedy);
    const PartitionStats hs = computePartitionStats(hash);
    EXPECT_LT(gs.cutEdges, hs.cutEdges);
    EXPECT_GE(gs.loadImbalance, 1.0);
    EXPECT_LE(gs.cutEdgeRatio, 1.0);
    EXPECT_FALSE(formatPartitionStats(gs, PartitionStrategy::Greedy)
                     .empty());
}

// ---------------------------------------------------------------------
// Exact shard-major kernels must be bit-identical to the global ones.
// ---------------------------------------------------------------------

struct ShardedFixture
{
    CsrGraph graph;
    AggregationSpec spec;
    DenseMatrix input;
    DenseMatrix weights;
    std::vector<Feature> bias;

    explicit ShardedFixture(GnnKind kind, std::size_t fIn = 96,
                            std::size_t fOut = 64)
    {
        graph = makeTestGraph(0);
        switch (kind) {
          case GnnKind::Gcn:
            spec = gcnSpec(graph);
            break;
          case GnnKind::Sage:
            spec = sageSpec(graph);
            break;
          case GnnKind::Gin:
            spec = ginSpec(graph);
            break;
        }
        input = DenseMatrix(graph.numVertices(), fIn);
        input.fillUniform(-1.0f, 1.0f, 31);
        weights = DenseMatrix(fIn, fOut);
        weights.fillUniform(-0.2f, 0.2f, 33);
        bias.assign(fOut, 0.01f);
    }

    UpdateOp
    update(Precision precision = Precision::Fp32) const
    {
        return UpdateOp{&weights, bias, true, nullptr, precision};
    }
};

class ShardedParity
    : public testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(ShardedParity, AggregationMatchesGlobalBitwise)
{
    const auto [kindIdx, k] = GetParam();
    ShardedFixture fx(static_cast<GnnKind>(kindIdx));
    PartitionPlan plan = planFor(fx.graph, k);
    DenseMatrix global(fx.graph.numVertices(), fx.input.cols());
    DenseMatrix sharded(fx.graph.numVertices(), fx.input.cols());
    aggregateBasic(fx.graph, fx.input, global, fx.spec);
    aggregateSharded(plan, fx.input, sharded, fx.spec);
    expectBitEqual(global, sharded);
}

TEST_P(ShardedParity, FusedForwardMatchesGlobalBitwise)
{
    const auto [kindIdx, k] = GetParam();
    ShardedFixture fx(static_cast<GnnKind>(kindIdx));
    PartitionPlan plan = planFor(fx.graph, k);
    const VertexId n = fx.graph.numVertices();

    DenseMatrix aggG(n, fx.input.cols()), outG(n, fx.weights.cols());
    DenseMatrix aggS(n, fx.input.cols()), outS(n, fx.weights.cols());
    fusedLayerTraining(fx.graph, fx.input, fx.spec, fx.update(), aggG,
                       outG);
    fusedLayerTrainingSharded(plan, fx.input, fx.spec, fx.update(), aggS,
                              outS);
    expectBitEqual(aggG, aggS);
    expectBitEqual(outG, outS);

    DenseMatrix infG(n, fx.weights.cols()), infS(n, fx.weights.cols());
    fusedLayerInference(fx.graph, fx.input, fx.spec, fx.update(), infG);
    fusedLayerInferenceSharded(plan, fx.input, fx.spec, fx.update(),
                               infS);
    expectBitEqual(infG, infS);
}

TEST_P(ShardedParity, FusedBackwardMatchesGlobalBitwise)
{
    const auto [kindIdx, k] = GetParam();
    ShardedFixture fx(static_cast<GnnKind>(kindIdx));
    if (fx.spec.reduce != ReduceOp::Sum)
        GTEST_SKIP();
    CsrGraph transposed = fx.graph.transposed();
    AggregationSpec tSpec = transposeSpec(fx.graph, fx.spec, transposed);
    PartitionPlan tPlan = planFor(transposed, k);

    const VertexId n = fx.graph.numVertices();
    DenseMatrix dz(n, fx.weights.cols());
    dz.fillUniform(-0.5f, 0.5f, 77);
    GemmPlan weightsNT;
    weightsNT.pack(GemmMode::NT, fx.weights, Precision::Fp32);
    DenseMatrix gradG(n, fx.input.cols()), gradS(n, fx.input.cols());
    fusedLayerBackward(transposed, dz, tSpec, weightsNT, gradG);
    fusedLayerBackwardSharded(tPlan, dz, tSpec, weightsNT, gradS);
    expectBitEqual(gradG, gradS);
}

TEST_P(ShardedParity, Bf16VariantsMatchGlobalBf16Bitwise)
{
    const auto [kindIdx, k] = GetParam();
    ShardedFixture fx(static_cast<GnnKind>(kindIdx));
    PartitionPlan plan = planFor(fx.graph, k);
    const VertexId n = fx.graph.numVertices();
    Bf16Matrix inBf16(n, fx.input.cols());
    inBf16.fromDense(fx.input);

    DenseMatrix aggG(n, fx.input.cols()), aggS(n, fx.input.cols());
    aggregateBf16(fx.graph, inBf16, aggG, fx.spec);
    aggregateShardedBf16(plan, inBf16, aggS, fx.spec);
    expectBitEqual(aggG, aggS);

    DenseMatrix fAggG(n, fx.input.cols()), fOutG(n, fx.weights.cols());
    DenseMatrix fAggS(n, fx.input.cols()), fOutS(n, fx.weights.cols());
    const UpdateOp update = fx.update(Precision::Bf16);
    fusedLayerTrainingBf16(fx.graph, inBf16, fx.spec, update, fAggG,
                           fOutG);
    fusedLayerTrainingShardedBf16(plan, inBf16, fx.spec, update, fAggS,
                                  fOutS);
    expectBitEqual(fAggG, fAggS);
    expectBitEqual(fOutG, fOutS);
}

INSTANTIATE_TEST_SUITE_P(ModelsAndShards, ShardedParity,
                         testing::Combine(testing::Values(0, 1, 2),
                                          testing::Values(1, 2, 4, 8)));

// ---------------------------------------------------------------------
// Delayed-halo mode: fp tolerance, exactness for max, byte accounting.
// ---------------------------------------------------------------------

TEST(DelayedHalo, SumWithinToleranceOfExact)
{
    ShardedFixture fx(GnnKind::Gcn);
    PartitionPlan plan = planFor(fx.graph, 4);
    DenseMatrix exact(fx.graph.numVertices(), fx.input.cols());
    DenseMatrix delayed(fx.graph.numVertices(), fx.input.cols());
    aggregateSharded(plan, fx.input, exact, fx.spec, false);
    aggregateSharded(plan, fx.input, delayed, fx.spec, true);
    expectNear(exact, delayed, 1e-3f);
}

TEST(DelayedHalo, MaxReduceStaysExact)
{
    // Max is insensitive to fold order, so the delayed split is exact.
    ShardedFixture fx(GnnKind::Gcn);
    fx.spec = maxSpec();
    PartitionPlan plan = planFor(fx.graph, 4);
    DenseMatrix exact(fx.graph.numVertices(), fx.input.cols());
    DenseMatrix delayed(fx.graph.numVertices(), fx.input.cols());
    aggregateSharded(plan, fx.input, exact, fx.spec, false);
    aggregateSharded(plan, fx.input, delayed, fx.spec, true);
    expectBitEqual(exact, delayed);
}

TEST(DelayedHalo, ReducesGatheredBytesAndMatchesEstimate)
{
    ShardedFixture fx(GnnKind::Gcn);
    PartitionPlan plan = planFor(fx.graph, 4);
    ASSERT_GT(plan.totalCutEdges(), plan.totalHaloVertices())
        << "fixture must have hub fan-in for delayed mode to win";
    DenseMatrix out(fx.graph.numVertices(), fx.input.cols());

    obs::MetricsRegistry &metrics = obs::MetricsRegistry::global();
    metrics.setEnabled(true);
    metrics.reset();
    aggregateSharded(plan, fx.input, out, fx.spec, false);
    const std::uint64_t exactBytes =
        metrics.counter("partition.bytes_gathered").value();

    metrics.reset();
    aggregateSharded(plan, fx.input, out, fx.spec, true);
    const std::uint64_t delayedBytes =
        metrics.counter("partition.bytes_gathered").value();
    const std::uint64_t haloBytes =
        metrics.counter("partition.halo_bytes").value();
    metrics.setEnabled(false);

    EXPECT_LT(delayedBytes, exactBytes);
    EXPECT_EQ(exactBytes,
              plan.estimatedGatherBytes(fx.input.rowBytes(), false));
    EXPECT_EQ(delayedBytes,
              plan.estimatedGatherBytes(fx.input.rowBytes(), true));
    EXPECT_EQ(haloBytes, static_cast<std::uint64_t>(
                             plan.totalHaloVertices()) *
                             fx.input.rowBytes());
}

// ---------------------------------------------------------------------
// Locality: the shard-major order must cut simulated DRAM traffic on a
// graph whose feature slice exceeds the (shrunken) LLC.
// ---------------------------------------------------------------------

TEST(ShardMajorSim, ReducesDramLinesVsGlobalOrderBaseline)
{
    // The planted-community generator shuffles vertex ids, so identity
    // is an honest arbitrary-id global-order baseline (small RMAT, by
    // contrast, embeds locality in its ids AND is expander-like — no
    // partition has a small cut there). Hubs give the degree skew of
    // real power-law graphs, and the greedy partitioner's Alg.-3
    // buckets recover whole communities per shard.
    CommunityParams params;
    params.numVertices = 4096;
    params.communitySize = 128;
    params.intraDegree = 16;
    params.interDegree = 2;
    params.hubsPerCommunity = 2;
    CsrGraph g = generateCommunityGraph(params);
    // Feature working set: |V| x 256 floats = 4 MB vs the shrunken
    // ~600 KB LLC, so gather reuse must come from the processing
    // order; each shard's slice (~1 MB owned + halo) streams through.
    PartitionPlan plan = planFor(g, 4);
    ASSERT_EQ(plan.validate(), nullptr) << plan.validate();

    auto run = [&](const ProcessingOrder *order) {
        sim::Machine machine(sim::paperMachine(64));
        sim::LayerWorkload workload;
        workload.graph = &g;
        workload.order = order;
        workload.fIn = 256;
        workload.fOut = 256;
        workload.impl = sim::LayerImpl::Basic;
        workload.doUpdate = false;
        return sim::simulateLayer(machine, workload);
    };
    const sim::RunResult identity = run(nullptr);
    const sim::RunResult sharded = run(&plan.shardMajorOrder);
    EXPECT_LT(sharded.dram.lineTransfers, identity.dram.lineTransfers);
}

// The model's plan cache is append-only: a request with a new
// (shards, strategy) key must not invalidate the plan an earlier
// caller may still be executing against (the concurrent-serving
// contract partitionPlanFor() documents).
TEST(PartitionPlan, ModelPlanCacheKeepsEntriesAcrossKeys)
{
    CsrGraph g = makeTestGraph(1);
    GnnModelConfig config;
    config.featureWidths = {16, 8};
    GnnModel model(g, config);

    TechniqueConfig tech;
    tech.shards = 2;
    const PartitionPlan *two = model.partitionPlanFor(tech);
    ASSERT_NE(two, nullptr);
    EXPECT_EQ(two->numShards(), 2u);

    tech.shards = 3;
    const PartitionPlan *three = model.partitionPlanFor(tech);
    ASSERT_NE(three, nullptr);
    EXPECT_NE(three, two);
    EXPECT_EQ(three->numShards(), 3u);
    // The first entry survived the second fill...
    EXPECT_EQ(two->numShards(), 2u);
    EXPECT_EQ(two->validate(), nullptr);

    // ...and a repeated request returns the same cached object.
    tech.shards = 2;
    EXPECT_EQ(model.partitionPlanFor(tech), two);

    // Strategy is part of the key.
    tech.partition = PartitionStrategy::Hash;
    const PartitionPlan *hash = model.partitionPlanFor(tech);
    ASSERT_NE(hash, nullptr);
    EXPECT_NE(hash, two);
    EXPECT_EQ(model.partitionPlanFor(tech), hash);

    // The transposed cache behaves identically.
    const PartitionPlan *transposed = model.transposedPartitionPlanFor(tech);
    ASSERT_NE(transposed, nullptr);
    EXPECT_EQ(model.transposedPartitionPlanFor(tech), transposed);
    tech.shards = 3;
    tech.partition = PartitionStrategy::Greedy;
    EXPECT_NE(model.transposedPartitionPlanFor(tech), transposed);
    EXPECT_EQ(transposed->numShards(), 2u);
}

// ---------------------------------------------------------------------
// End to end: shard-major training must reproduce flat training
// bit-for-bit (exact mode), for fused and unfused techniques.
// ---------------------------------------------------------------------

TEST(ShardedTraining, MatchesFlatTrainingBitwise)
{
    CsrGraph g = makeTestGraph(0);
    SyntheticTask task = makeSyntheticTask(g, 8, 32, 0.4, 11);

    auto train = [&](std::size_t shards, bool fusion) {
        GnnModelConfig config;
        config.featureWidths = {32, 32, 8};
        config.dropoutRate = 0.5;
        GnnModel model(g, config);
        TrainerConfig tc;
        tc.epochs = 3;
        tc.learningRate = 0.3f;
        tc.tech.fusion = fusion;
        tc.tech.shards = shards;
        Trainer trainer(model, task.features, task.labels, tc);
        auto history = trainer.train();
        std::vector<double> losses;
        for (const EpochStats &e : history)
            losses.push_back(e.loss);
        std::vector<Feature> weights;
        for (std::size_t k = 0; k < model.numLayers(); ++k) {
            const DenseMatrix &w = model.layer(k).weights();
            for (std::size_t r = 0; r < w.rows(); ++r)
                weights.insert(weights.end(), w.row(r),
                               w.row(r) + w.cols());
        }
        return std::make_pair(losses, weights);
    };

    for (bool fusion : {false, true}) {
        const auto flat = train(0, fusion);
        const auto sharded = train(4, fusion);
        EXPECT_EQ(flat.first, sharded.first) << "fusion=" << fusion;
        EXPECT_EQ(flat.second, sharded.second) << "fusion=" << fusion;
    }
}

} // namespace
} // namespace graphite
