/**
 * @file
 * ScopedAllocGuard unit tests plus the dynamic half of the
 * allocation-free steady-state contract: after warm-up, a full Trainer
 * epoch (fused fp32 and bf16) and a GnnModel::inference call (flat and
 * sharded) must perform zero heap allocations. graphite_lint enforces
 * the same property statically inside the kernel hot loops; these
 * tests prove it end to end across kernels, pool dispatch and the
 * model's persistent workspaces.
 *
 * The zero-allocation assertions are gated on
 * ScopedAllocGuard::interpositionActive(): the counting interposer is
 * compiled in only under GRAPHITE_CHECKS (the checks/sanitizer CI
 * jobs), and asserting against a dead counter would pass vacuously.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/alloc_guard.h"
#include "gnn/gnn_model.h"
#include "gnn/trainer.h"
#include "graph/generators.h"
#include "parallel/thread_pool.h"

namespace graphite {
namespace {

CsrGraph
testGraph()
{
    return generateErdosRenyi(150, 1200, false, 97);
}

/**
 * Deliberately allocate. The pointer is laundered through an asm
 * barrier: C++14 allows the compiler to elide new/delete pairs it can
 * prove unobservable, which is exactly what -O2 does to a plain
 * make_unique here.
 */
void
touchHeap()
{
    std::uint64_t *p = new std::uint64_t(42);
    asm volatile("" : : "g"(p) : "memory");
    delete p;
}

TEST(ScopedAllocGuardTest, CountsADeliberateAllocation)
{
    ScopedAllocGuard guard("deliberate");
    touchHeap();
    if (ScopedAllocGuard::interpositionActive())
        EXPECT_GE(guard.allocations(), 1u);
    else
        EXPECT_EQ(guard.allocations(), 0u);
}

TEST(ScopedAllocGuardTest, NestsCorrectly)
{
    ScopedAllocGuard outer("outer");
    touchHeap();
    {
        ScopedAllocGuard inner("inner");
        touchHeap();
        if (ScopedAllocGuard::interpositionActive()) {
            EXPECT_GE(inner.allocations(), 1u);
            // The outer guard saw the inner guard's allocations too.
            EXPECT_GE(outer.allocations(), inner.allocations() + 1);
        }
    }
    EXPECT_STREQ(outer.label(), "outer");
}

TEST(ScopedAllocGuardTest, NoOpWhenChecksOff)
{
#ifdef GRAPHITE_ENABLE_DCHECKS
    EXPECT_TRUE(ScopedAllocGuard::interpositionActive());
#else
    EXPECT_FALSE(ScopedAllocGuard::interpositionActive());
    ScopedAllocGuard guard("off");
    touchHeap();
    EXPECT_EQ(guard.allocations(), 0u);
#endif
}

TEST(ScopedAllocGuardTest, CountsPoolWorkerAllocations)
{
    if (!ScopedAllocGuard::interpositionActive())
        GTEST_SKIP() << "interposer compiled out (GRAPHITE_CHECKS off)";
    // Warm the pool (thread spawn allocates).
    parallelFor(0, 8, 1, [](std::size_t, std::size_t, std::size_t) {});
    ScopedAllocGuard guard("pool");
    parallelFor(0, 8, 1, [](std::size_t, std::size_t, std::size_t) {
        touchHeap();
    });
    EXPECT_GE(guard.allocations(), 8u);
}

/**
 * The pool's dispatch itself must be allocation-free: entering a
 * parallel region sits inside the per-block hot path, and FunctionRef
 * dispatch (unlike the std::function it replaced) never touches the
 * heap.
 */
TEST(ScopedAllocGuardTest, PoolDispatchIsAllocationFree)
{
    if (!ScopedAllocGuard::interpositionActive())
        GTEST_SKIP() << "interposer compiled out (GRAPHITE_CHECKS off)";
    std::vector<std::uint64_t> sums(64, 0);
    auto body = [&](std::size_t b, std::size_t e, std::size_t) {
        for (std::size_t i = b; i < e; ++i)
            sums[i % sums.size()] += i;
    };
    parallelFor(0, 1024, 16, body); // warm-up (lazy pool construction)
    ScopedAllocGuard guard("dispatch");
    for (int rep = 0; rep < 10; ++rep)
        parallelFor(0, 1024, 16, body);
    EXPECT_EQ(guard.allocations(), 0u);
}

struct SteadyStateFixture
{
    explicit SteadyStateFixture(const TechniqueConfig &tech)
        : graph(testGraph()), features(graph.numVertices(), 12),
          labels(graph.numVertices())
    {
        GnnModelConfig config;
        config.featureWidths = {12, 24, 5};
        model = std::make_unique<GnnModel>(graph, config);
        features.fillUniform(-1.0f, 1.0f, 11);
        for (VertexId v = 0; v < graph.numVertices(); ++v)
            labels[v] = static_cast<std::int32_t>(v % 5);
        trainerConfig.epochs = 1;
        trainerConfig.tech = tech;
        trainer = std::make_unique<Trainer>(*model, features, labels,
                                            trainerConfig);
    }

    CsrGraph graph;
    DenseMatrix features;
    std::vector<std::int32_t> labels;
    TrainerConfig trainerConfig;
    std::unique_ptr<GnnModel> model;
    std::unique_ptr<Trainer> trainer;
};

void
expectEpochAllocationFree(const TechniqueConfig &tech, const char *what)
{
    if (!ScopedAllocGuard::interpositionActive())
        GTEST_SKIP() << "interposer compiled out (GRAPHITE_CHECKS off)";
    SteadyStateFixture fx(tech);
    // Warm-up epochs size every persistent buffer, thread-local
    // scratch and cached plan/order.
    fx.trainer->trainEpoch();
    fx.trainer->trainEpoch();
    ScopedAllocGuard guard(what);
    fx.trainer->trainEpoch();
    EXPECT_EQ(guard.allocations(), 0u)
        << what << ": steady-state epoch allocated";
}

TEST(SteadyStateAllocFree, FusedFp32Training)
{
    expectEpochAllocationFree(TechniqueConfig::withFusion(),
                              "fused-fp32-epoch");
}

TEST(SteadyStateAllocFree, FusedBf16Training)
{
    TechniqueConfig tech = TechniqueConfig::withFusion();
    tech.precision = Precision::Bf16;
    expectEpochAllocationFree(tech, "fused-bf16-epoch");
}

TEST(SteadyStateAllocFree, CombinedLocalityTraining)
{
    expectEpochAllocationFree(TechniqueConfig::combinedLocality(),
                              "combined-locality-epoch");
}

void
expectInferenceAllocationFree(const TechniqueConfig &tech, const char *what)
{
    if (!ScopedAllocGuard::interpositionActive())
        GTEST_SKIP() << "interposer compiled out (GRAPHITE_CHECKS off)";
    SteadyStateFixture fx(tech);
    fx.model->inference(fx.features, tech); // warm-up sizes the buffers
    fx.model->inference(fx.features, tech);
    ScopedAllocGuard guard(what);
    const DenseMatrix &logits = fx.model->inference(fx.features, tech);
    EXPECT_EQ(guard.allocations(), 0u)
        << what << ": steady-state inference allocated";
    EXPECT_EQ(logits.rows(), fx.graph.numVertices());
}

TEST(SteadyStateAllocFree, FusedInference)
{
    expectInferenceAllocationFree(TechniqueConfig::withFusion(),
                                  "fused-inference");
}

TEST(SteadyStateAllocFree, ShardedInference)
{
    TechniqueConfig tech = TechniqueConfig::withFusion();
    tech.shards = 4;
    expectInferenceAllocationFree(tech, "sharded-inference");
}

TEST(SteadyStateAllocFree, ShardedBf16Inference)
{
    TechniqueConfig tech = TechniqueConfig::withFusion();
    tech.shards = 4;
    tech.precision = Precision::Bf16;
    expectInferenceAllocationFree(tech, "sharded-bf16-inference");
}

} // namespace
} // namespace graphite
