/**
 * @file
 * Tests of the aggregation kernels (paper Algorithm 1): the vectorised
 * kernel against the scalar reference across graph shapes, feature
 * widths and ψ specs; compressed-input aggregation against dense; and
 * the order-invariance property (a processing order permutes work, not
 * results).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "compress/compressed_matrix.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/reorder.h"
#include "kernels/aggregation.h"

namespace graphite {
namespace {

CsrGraph
graphFor(int kind)
{
    switch (kind) {
      case 0:
        return generateRing(50, 1);
      case 1:
        return generateErdosRenyi(300, 2500, false, 11);
      default: {
        RmatParams params;
        params.scale = 9;
        params.avgDegree = 10.0;
        return generateRmat(params);
      }
    }
}

AggregationSpec
specFor(const CsrGraph &g, int kind)
{
    switch (kind) {
      case 0:
        return sumSpec();
      case 1:
        return gcnSpec(g);
      default:
        return sageSpec(g);
    }
}

class AggregationMatrix
    : public testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(AggregationMatrix, VectorKernelMatchesReference)
{
    const auto [graphKind, specKind, width] = GetParam();
    CsrGraph g = graphFor(graphKind);
    DenseMatrix h(g.numVertices(), static_cast<std::size_t>(width));
    h.fillUniform(-1.0f, 1.0f, 21);
    AggregationSpec spec = specFor(g, specKind);

    DenseMatrix out(g.numVertices(), h.cols());
    DenseMatrix expected(g.numVertices(), h.cols());
    aggregateBasic(g, h, out, spec);
    aggregateReference(g, h, expected, spec);
    EXPECT_LT(out.maxAbsDiff(expected), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AggregationMatrix,
    testing::Combine(testing::Values(0, 1, 2),   // graph shape
                     testing::Values(0, 1, 2),   // spec: sum/gcn/sage
                     testing::Values(16, 100, 256, 300)));

TEST(Aggregation, ProcessingOrderDoesNotChangeResults)
{
    CsrGraph g = graphFor(2);
    DenseMatrix h(g.numVertices(), 64);
    h.fillUniform(-1.0f, 1.0f, 22);
    AggregationSpec spec = gcnSpec(g);

    DenseMatrix identity(g.numVertices(), 64);
    DenseMatrix locality(g.numVertices(), 64);
    DenseMatrix random(g.numVertices(), 64);
    aggregateBasic(g, h, identity, spec);
    ProcessingOrder loc = localityOrder(g);
    aggregateBasic(g, h, locality, spec, loc);
    ProcessingOrder rnd = randomOrder(g, 33);
    aggregateBasic(g, h, random, spec, rnd);
    EXPECT_DOUBLE_EQ(identity.maxAbsDiff(locality), 0.0);
    EXPECT_DOUBLE_EQ(identity.maxAbsDiff(random), 0.0);
}

TEST(Aggregation, PrefetchConfigDoesNotChangeResults)
{
    CsrGraph g = graphFor(1);
    DenseMatrix h(g.numVertices(), 128);
    h.fillUniform(-1.0f, 1.0f, 23);
    AggregationSpec spec = sageSpec(g);

    DenseMatrix base(g.numVertices(), 128);
    AggregationConfig noPrefetch;
    noPrefetch.prefetchDistance = 0;
    aggregateBasic(g, h, base, spec, {}, noPrefetch);

    DenseMatrix deep(g.numVertices(), 128);
    AggregationConfig deepPrefetch;
    deepPrefetch.prefetchDistance = 16;
    deepPrefetch.prefetchLines = 4;
    aggregateBasic(g, h, deep, spec, {}, deepPrefetch);
    EXPECT_DOUBLE_EQ(base.maxAbsDiff(deep), 0.0);
}

TEST(Aggregation, IsolatedVertexAggregatesOnlyItself)
{
    GraphBuilder builder(3);
    builder.addEdge(0, 1); // vertex 2 isolated
    CsrGraph g = builder.build();
    DenseMatrix h(3, 16);
    h.at(2, 3) = 5.0f;
    DenseMatrix out(3, 16);
    aggregateBasic(g, h, out, sumSpec());
    EXPECT_FLOAT_EQ(out.at(2, 3), 5.0f);
    for (std::size_t c = 0; c < 16; ++c) {
        if (c != 3) {
            EXPECT_FLOAT_EQ(out.at(2, c), 0.0f);
        }
    }
}

TEST(Aggregation, GcnSpecNormalisesByDegreeProducts)
{
    // Two vertices connected by one undirected edge. With the self
    // term, D' = 2 for both: self factor = 1/2, edge factor = 1/2.
    GraphBuilder builder(2);
    builder.addUndirectedEdge(0, 1);
    CsrGraph g = builder.build();
    AggregationSpec spec = gcnSpec(g);
    EXPECT_NEAR(spec.selfFactor(0), 0.5f, 1e-6);
    EXPECT_NEAR(spec.edgeFactor(0), 0.5f, 1e-6);
}

TEST(Aggregation, SageSpecAveragesNeighborhood)
{
    GraphBuilder builder(3);
    builder.addEdge(0, 1);
    builder.addEdge(0, 2);
    CsrGraph g = builder.build();
    AggregationSpec spec = sageSpec(g);
    // Vertex 0 has degree 2: every term weighted 1/3.
    EXPECT_NEAR(spec.selfFactor(0), 1.0f / 3.0f, 1e-6);
    EXPECT_NEAR(spec.edgeFactor(0), 1.0f / 3.0f, 1e-6);
    EXPECT_NEAR(spec.edgeFactor(1), 1.0f / 3.0f, 1e-6);

    DenseMatrix h(3, 16);
    h.at(0, 0) = 3.0f;
    h.at(1, 0) = 6.0f;
    h.at(2, 0) = 9.0f;
    DenseMatrix out(3, 16);
    aggregateBasic(g, h, out, spec);
    EXPECT_NEAR(out.at(0, 0), (3.0f + 6.0f + 9.0f) / 3.0f, 1e-5);
}

class CompressedAggregation : public testing::TestWithParam<double>
{
};

TEST_P(CompressedAggregation, MatchesDenseAggregation)
{
    CsrGraph g = graphFor(2);
    DenseMatrix h(g.numVertices(), 128);
    h.fillUniform(0.0f, 2.0f, 24);
    h.sparsify(GetParam(), 25);
    CompressedMatrix packed(g.numVertices(), 128);
    packed.compressFrom(h);
    AggregationSpec spec = gcnSpec(g);

    DenseMatrix dense(g.numVertices(), 128);
    DenseMatrix fromPacked(g.numVertices(), 128);
    aggregateBasic(g, h, dense, spec);
    aggregateCompressed(g, packed, fromPacked, spec);
    EXPECT_LT(dense.maxAbsDiff(fromPacked), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Sparsities, CompressedAggregation,
                         testing::Values(0.0, 0.3, 0.5, 0.8, 0.95));

TEST(Aggregation, SingleVertexKernelMatchesRowOfFullKernel)
{
    CsrGraph g = graphFor(1);
    DenseMatrix h(g.numVertices(), 256);
    h.fillUniform(-1.0f, 1.0f, 26);
    AggregationSpec spec = sageSpec(g);
    DenseMatrix full(g.numVertices(), 256);
    aggregateBasic(g, h, full, spec);

    DenseMatrix single(1, 256);
    aggregateVertex(g, h, 17, spec, single.row(0));
    for (std::size_t c = 0; c < 256; ++c)
        EXPECT_NEAR(single.at(0, c), full.at(17, c), 1e-5);
}

TEST(Aggregation, TransposeOfSymmetricGraphAggregatesIdentically)
{
    // On an undirected (symmetric) graph, transposition is the
    // identity, so the unweighted aggregation over G and Gᵀ must agree
    // exactly — a structural sanity check for the backward pass.
    CsrGraph g = generateErdosRenyi(200, 1200, /*undirected=*/true, 27);
    CsrGraph t = g.transposed();
    DenseMatrix h(g.numVertices(), 32);
    h.fillUniform(0.0f, 1.0f, 27);

    DenseMatrix fwd(g.numVertices(), 32);
    DenseMatrix bwd(g.numVertices(), 32);
    aggregateBasic(g, h, fwd, sumSpec());
    aggregateBasic(t, h, bwd, sumSpec());
    EXPECT_DOUBLE_EQ(fwd.maxAbsDiff(bwd), 0.0);
}

TEST(Aggregation, ValidateSpecCatchesFactorLengthMismatch)
{
    CsrGraph g = generateRing(20, 1);
    // Empty factor arrays mean "all ones" and are always valid.
    EXPECT_EQ(validateSpec(sumSpec(), g), nullptr);
    EXPECT_EQ(validateSpec(gcnSpec(g), g), nullptr);

    // A spec built for one graph applied to another: the factor arrays
    // no longer match |E|/|V| and every kernel entry rejects it before
    // indexing past their ends.
    CsrGraph other = generateRing(24, 1);
    AggregationSpec stale = gcnSpec(g);
    EXPECT_NE(validateSpec(stale, other), nullptr);

    AggregationSpec truncated = gcnSpec(g);
    truncated.edgeFactors.pop_back();
    EXPECT_NE(validateSpec(truncated, g), nullptr);

    AggregationSpec shortSelf = gcnSpec(g);
    shortSelf.selfFactors.pop_back();
    EXPECT_NE(validateSpec(shortSelf, g), nullptr);
}

} // namespace
} // namespace graphite
