/**
 * @file
 * Tests of layer fusion (paper Algorithm 2): fused results must be
 * bit-compatible with the unfused aggregation + GEMM pipeline across
 * block sizes, orders, and compression variants.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "graph/generators.h"
#include "graph/reorder.h"
#include "kernels/fused_layer.h"
#include "tensor/gemm.h"
#include "tensor/row_ops.h"

namespace graphite {
namespace {

struct LayerFixture
{
    CsrGraph graph;
    AggregationSpec spec;
    DenseMatrix input;
    DenseMatrix weights;
    std::vector<Feature> bias;

    LayerFixture(std::size_t fIn, std::size_t fOut, double sparsity = 0.0)
    {
        RmatParams params;
        params.scale = 9;
        params.avgDegree = 8.0;
        graph = generateRmat(params);
        spec = gcnSpec(graph);
        input = DenseMatrix(graph.numVertices(), fIn);
        input.fillUniform(-1.0f, 1.0f, 31);
        if (sparsity > 0.0)
            input.sparsify(sparsity, 32);
        weights = DenseMatrix(fIn, fOut);
        weights.fillUniform(-0.2f, 0.2f, 33);
        bias.assign(fOut, 0.01f);
    }

    UpdateOp
    update() const
    {
        return UpdateOp{&weights, bias, true};
    }

    /** Ground truth h^k and a^k via the unfused path. */
    std::pair<DenseMatrix, DenseMatrix>
    reference() const
    {
        DenseMatrix agg(graph.numVertices(), input.cols());
        DenseMatrix out(graph.numVertices(), weights.cols());
        unfusedLayer(graph, input, spec, update(), agg, out);
        return {std::move(agg), std::move(out)};
    }
};

class FusedBlockShapes
    : public testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(FusedBlockShapes, TrainingVariantMatchesUnfused)
{
    const auto [blockSize, blocksPerTask] = GetParam();
    LayerFixture fx(96, 64);
    auto [refAgg, refOut] = fx.reference();

    FusedConfig config;
    config.blockSize = static_cast<std::size_t>(blockSize);
    config.blocksPerTask = static_cast<std::size_t>(blocksPerTask);
    DenseMatrix agg(fx.graph.numVertices(), 96);
    DenseMatrix out(fx.graph.numVertices(), 64);
    fusedLayerTraining(fx.graph, fx.input, fx.spec, fx.update(), agg, out,
                       {}, config);
    EXPECT_LT(agg.maxAbsDiff(refAgg), 1e-4);
    EXPECT_LT(out.maxAbsDiff(refOut), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Blocks, FusedBlockShapes,
                         testing::Combine(testing::Values(1, 7, 16, 64),
                                          testing::Values(1, 4)));

TEST(FusedLayer, InferenceVariantMatchesUnfused)
{
    LayerFixture fx(128, 128);
    auto [refAgg, refOut] = fx.reference();
    DenseMatrix out(fx.graph.numVertices(), 128);
    fusedLayerInference(fx.graph, fx.input, fx.spec, fx.update(), out);
    EXPECT_LT(out.maxAbsDiff(refOut), 1e-4);
}

TEST(FusedLayer, RespectsProcessingOrder)
{
    LayerFixture fx(64, 32);
    auto [refAgg, refOut] = fx.reference();
    ProcessingOrder order = localityOrder(fx.graph);
    DenseMatrix agg(fx.graph.numVertices(), 64);
    DenseMatrix out(fx.graph.numVertices(), 32);
    fusedLayerTraining(fx.graph, fx.input, fx.spec, fx.update(), agg, out,
                       order);
    EXPECT_LT(agg.maxAbsDiff(refAgg), 1e-4);
    EXPECT_LT(out.maxAbsDiff(refOut), 1e-4);
}

TEST(FusedLayer, CompressedInputMatchesDense)
{
    LayerFixture fx(128, 96, 0.6);
    auto [refAgg, refOut] = fx.reference();
    CompressedMatrix packed(fx.graph.numVertices(), 128);
    packed.compressFrom(fx.input);

    DenseMatrix agg(fx.graph.numVertices(), 128);
    DenseMatrix out(fx.graph.numVertices(), 96);
    fusedLayerTrainingCompressed(fx.graph, packed, fx.spec, fx.update(),
                                 agg, out);
    EXPECT_LT(agg.maxAbsDiff(refAgg), 1e-4);
    EXPECT_LT(out.maxAbsDiff(refOut), 1e-4);
}

TEST(FusedLayer, CompressedOutputRoundTrips)
{
    LayerFixture fx(64, 64, 0.5);
    DenseMatrix out(fx.graph.numVertices(), 64);
    CompressedMatrix outPacked(fx.graph.numVertices(), 64);
    fusedLayerInference(fx.graph, fx.input, fx.spec, fx.update(), out);

    CompressedMatrix inPacked(fx.graph.numVertices(), 64);
    inPacked.compressFrom(fx.input);
    DenseMatrix out2(fx.graph.numVertices(), 64);
    fusedLayerInferenceCompressed(fx.graph, inPacked, fx.spec, fx.update(),
                                  out2, &outPacked);
    EXPECT_LT(out.maxAbsDiff(out2), 1e-4);

    // The packed output must decompress to the dense output (ReLU makes
    // it genuinely sparse, exercising real compression).
    DenseMatrix restored(fx.graph.numVertices(), 64);
    outPacked.decompressTo(restored);
    EXPECT_LT(restored.maxAbsDiff(out2), 1e-6);
    EXPECT_GT(out2.sparsity(), 0.2); // ReLU produced zeros
}

TEST(FusedLayer, NoReluPassesNegativesThrough)
{
    LayerFixture fx(32, 32);
    UpdateOp update = fx.update();
    update.relu = false;
    DenseMatrix agg(fx.graph.numVertices(), 32);
    DenseMatrix out(fx.graph.numVertices(), 32);
    fusedLayerTraining(fx.graph, fx.input, fx.spec, update, agg, out);
    bool sawNegative = false;
    for (VertexId v = 0; v < fx.graph.numVertices() && !sawNegative; ++v) {
        for (std::size_t c = 0; c < 32; ++c) {
            if (out.at(v, c) < 0.0f) {
                sawNegative = true;
                break;
            }
        }
    }
    EXPECT_TRUE(sawNegative);
}

TEST(FusedLayer, BlockLargerThanGraphStillCorrect)
{
    LayerFixture fx(48, 24);
    auto [refAgg, refOut] = fx.reference();
    FusedConfig config;
    config.blockSize = fx.graph.numVertices() * 2;
    DenseMatrix agg(fx.graph.numVertices(), 48);
    DenseMatrix out(fx.graph.numVertices(), 24);
    fusedLayerTraining(fx.graph, fx.input, fx.spec, fx.update(), agg, out,
                       {}, config);
    EXPECT_LT(out.maxAbsDiff(refOut), 1e-4);
}

} // namespace
} // namespace graphite
