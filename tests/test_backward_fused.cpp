/**
 * @file
 * Tests of the fused backward pass: the commuted fused kernel against
 * the unfused GEMM-then-aggregate composition and the push-style
 * scatter oracle, a full-model gradient-parity sweep across model
 * kinds, block sizes, locality and dropout, determinism of the
 * parallel bias-gradient column sum, and the zero-allocation
 * steady-state contract of training and inference workspaces.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <tuple>
#include <vector>

#include "gnn/gnn_model.h"
#include "gnn/trainer.h"
#include "graph/generators.h"
#include "kernels/fused_layer.h"
#include "tensor/gemm.h"
#include "tensor/row_ops.h"

namespace graphite {
namespace {

CsrGraph
testGraph()
{
    return generateErdosRenyi(150, 1200, false, 97);
}

/** 1e-4 relative tolerance with an absolute floor for tiny values. */
void
expectClose(float got, float ref, const char *what, std::size_t index)
{
    const float tol = 1e-4f * std::max(1.0f, std::abs(ref));
    EXPECT_NEAR(got, ref, tol) << what << "[" << index << "]";
}

/**
 * The three implementations of dh_prev = Aggᵀ(dz·Wᵀ) must agree: the
 * fused commuted kernel, the unfused GEMM-then-aggregate pipeline, and
 * the push-style scatter oracle that walks the forward CSR.
 */
TEST(FusedBackwardKernel, MatchesUnfusedAndScatterOracle)
{
    const CsrGraph g = testGraph();
    const CsrGraph t = g.transposed();
    const AggregationSpec spec = gcnSpec(g);
    const AggregationSpec tSpec = transposeSpec(g, spec, t);
    const std::size_t fIn = 24;
    const std::size_t fOut = 12;

    DenseMatrix weights(fIn, fOut);
    weights.fillUniform(-0.5f, 0.5f, 5);
    DenseMatrix dz(g.numVertices(), fOut);
    dz.fillUniform(-1.0f, 1.0f, 6);
    GemmPlan planNT;
    planNT.pack(GemmMode::NT, weights);

    // Unfused: materialise dAgg = dz·Wᵀ, then aggregate it.
    DenseMatrix dAgg(g.numVertices(), fIn);
    gemm(GemmMode::NT, dz, planNT, dAgg);
    DenseMatrix unfused(g.numVertices(), fIn);
    aggregateBasic(t, dAgg, unfused, tSpec);

    // Scatter oracle: push dAgg rows along the forward CSR.
    DenseMatrix oracle(g.numVertices(), fIn);
    aggregateTransposedPush(g, dAgg, oracle, spec);

    // Fused: aggregate dz blocks, GEMM them while cache-resident.
    DenseMatrix fused(g.numVertices(), fIn);
    fusedLayerBackward(t, dz, tSpec, planNT, fused);

    for (VertexId v = 0; v < g.numVertices(); ++v) {
        for (std::size_t c = 0; c < fIn; ++c) {
            expectClose(oracle.at(v, c), unfused.at(v, c), "oracle", c);
            expectClose(fused.at(v, c), unfused.at(v, c), "fused", c);
        }
    }
}

TEST(FusedBackwardKernel, HonorsProcessingOrder)
{
    const CsrGraph g = testGraph();
    const CsrGraph t = g.transposed();
    const AggregationSpec spec = gcnSpec(g);
    const AggregationSpec tSpec = transposeSpec(g, spec, t);

    DenseMatrix weights(16, 8);
    weights.fillUniform(-0.5f, 0.5f, 7);
    DenseMatrix dz(g.numVertices(), 8);
    dz.fillUniform(-1.0f, 1.0f, 8);
    GemmPlan planNT;
    planNT.pack(GemmMode::NT, weights);

    DenseMatrix plain(g.numVertices(), 16);
    fusedLayerBackward(t, dz, tSpec, planNT, plain);

    const ProcessingOrder order = localityOrder(t);
    DenseMatrix ordered(g.numVertices(), 16);
    fusedLayerBackward(t, dz, tSpec, planNT, ordered, order);

    // Every output row is computed independently, so a permuted
    // processing order must not change any value (bit-identical).
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        for (std::size_t c = 0; c < 16; ++c)
            EXPECT_EQ(plain.at(v, c), ordered.at(v, c)) << v;
    }
}

/** Parallel ordered column sum: exact reference match, bit-stable. */
TEST(BiasGradColumnSum, MatchesSerialReferenceAndIsDeterministic)
{
    DenseMatrix x(5000, 33);
    x.fillUniform(-1.0f, 1.0f, 9);

    std::vector<Feature> reference(33, 0.0f);
    for (std::size_t r = 0; r < x.rows(); ++r) {
        for (std::size_t c = 0; c < x.cols(); ++c)
            reference[c] += x.at(r, c);
    }

    std::vector<Feature> scratch;
    std::vector<Feature> out1(33);
    std::vector<Feature> out2(33);
    columnSum(x, out1, scratch);
    columnSum(x, out2, scratch);
    for (std::size_t c = 0; c < 33; ++c) {
        EXPECT_EQ(out1[c], out2[c]) << c; // deterministic re-run
        expectClose(out1[c], reference[c], "colsum", c);
    }
}

/** (kind, fused blockSize, locality, dropout) */
using SweepParam = std::tuple<GnnKind, std::size_t, bool, bool>;

class BackwardGradientParity
    : public ::testing::TestWithParam<SweepParam>
{
};

/**
 * Full-model gradient parity: identical models trained one step with
 * fusion off vs on must produce the same weight and bias gradients to
 * 1e-4 relative. Dropout stays comparable because mask generation
 * depends only on (seed, epoch, layer), not on the kernel path.
 */
TEST_P(BackwardGradientParity, FusedMatchesUnfusedGradients)
{
    const auto [kind, blockSize, locality, dropout] = GetParam();
    const CsrGraph g = testGraph();

    GnnModelConfig config;
    config.kind = kind;
    config.featureWidths = {12, 24, 5};
    config.dropoutRate = dropout ? 0.4 : 0.0;
    GnnModel unfusedModel(g, config);
    GnnModel fusedModel(g, config);

    DenseMatrix features(g.numVertices(), 12);
    features.fillUniform(-1.0f, 1.0f, 10);
    std::vector<std::int32_t> labels(g.numVertices());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        labels[v] = static_cast<std::int32_t>(v % 5);

    TechniqueConfig unfusedTech;
    unfusedTech.locality = locality;
    TechniqueConfig fusedTech = unfusedTech;
    fusedTech.fusion = true;
    fusedTech.fused.blockSize = blockSize;

    const auto backward = [&](GnnModel &model,
                              const TechniqueConfig &tech) {
        const DenseMatrix &logits = model.trainForward(features, tech);
        DenseMatrix lossGrad(logits.rows(), logits.cols());
        softmaxCrossEntropy(logits, labels, lossGrad);
        model.trainBackward(lossGrad, tech);
    };
    backward(unfusedModel, unfusedTech);
    backward(fusedModel, fusedTech);

    for (std::size_t k = 0; k < unfusedModel.numLayers(); ++k) {
        const DenseMatrix &refW = unfusedModel.layer(k).weightGrad();
        const DenseMatrix &gotW = fusedModel.layer(k).weightGrad();
        ASSERT_EQ(refW.rows(), gotW.rows());
        ASSERT_EQ(refW.cols(), gotW.cols());
        for (std::size_t r = 0; r < refW.rows(); ++r) {
            for (std::size_t c = 0; c < refW.cols(); ++c) {
                expectClose(gotW.at(r, c), refW.at(r, c), "weightGrad",
                            r * refW.cols() + c);
            }
        }
        const std::span<const Feature> refB =
            unfusedModel.layer(k).biasGrad();
        const std::span<const Feature> gotB =
            fusedModel.layer(k).biasGrad();
        ASSERT_EQ(refB.size(), gotB.size());
        for (std::size_t c = 0; c < refB.size(); ++c)
            expectClose(gotB[c], refB[c], "biasGrad", c);
    }
}

std::string
sweepName(const ::testing::TestParamInfo<SweepParam> &info)
{
    const auto [kind, blockSize, locality, dropout] = info.param;
    return gnnKindName(kind) + "_B" + std::to_string(blockSize) +
           (locality ? "_loc" : "_seq") + (dropout ? "_drop" : "_nodrop");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BackwardGradientParity,
    ::testing::Combine(::testing::Values(GnnKind::Gcn, GnnKind::Sage,
                                         GnnKind::Gin),
                       ::testing::Values(std::size_t{4}, std::size_t{16},
                                         std::size_t{64}),
                       ::testing::Bool(), ::testing::Bool()),
    sweepName);

/**
 * The zero-allocation contract: after the first epoch sizes every
 * workspace, further epochs must not move any persistent buffer — the
 * pointer set reported by workspacePointers() stays identical.
 */
TEST(SteadyStateAllocation, TrainingWorkspacesStayPinned)
{
    const CsrGraph g = testGraph();
    GnnModelConfig config;
    config.featureWidths = {12, 24, 5};
    GnnModel model(g, config);

    DenseMatrix features(g.numVertices(), 12);
    features.fillUniform(-1.0f, 1.0f, 11);
    std::vector<std::int32_t> labels(g.numVertices());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        labels[v] = static_cast<std::int32_t>(v % 5);

    TrainerConfig trainerConfig;
    trainerConfig.epochs = 1;
    trainerConfig.tech = TechniqueConfig::withFusion();
    Trainer trainer(model, features, labels, trainerConfig);

    trainer.trainEpoch(); // warm-up epoch sizes every buffer
    trainer.trainEpoch();
    const std::vector<const void *> before = model.workspacePointers();
    trainer.trainEpoch();
    trainer.trainEpoch();
    const std::vector<const void *> after = model.workspacePointers();
    EXPECT_EQ(before, after);
}

TEST(SteadyStateAllocation, InferenceWorkspacesStayPinned)
{
    const CsrGraph g = testGraph();
    GnnModelConfig config;
    config.featureWidths = {12, 24, 5};
    GnnModel model(g, config);

    DenseMatrix features(g.numVertices(), 12);
    features.fillUniform(-1.0f, 1.0f, 12);

    for (const TechniqueConfig &tech :
         {TechniqueConfig::basic(), TechniqueConfig::combined()}) {
        const DenseMatrix &first = model.inference(features, tech);
        const void *logitsPtr = first.data();
        const std::vector<const void *> before =
            model.workspacePointers();
        const DenseMatrix &second = model.inference(features, tech);
        EXPECT_EQ(logitsPtr, second.data()) << tech.label();
        EXPECT_EQ(before, model.workspacePointers()) << tech.label();
    }
}

} // namespace
} // namespace graphite
