/**
 * @file
 * End-to-end integration tests: full training runs exercising every
 * technique combination on the dataset analogues, cross-checking the
 * functional DMA path inside a training loop, and verifying the whole
 * pipeline (generate -> reorder -> train -> evaluate) hangs together.
 */

#include <gtest/gtest.h>

#include "dma/pipelined_runner.h"
#include "gnn/trainer.h"
#include "graph/datasets.h"
#include "graph/reorder.h"
#include "kernels/fused_layer.h"

namespace graphite {
namespace {

class TrainWithTechniques : public testing::TestWithParam<int>
{
  protected:
    TechniqueConfig
    tech() const
    {
        switch (GetParam()) {
          case 0: return TechniqueConfig::basic();
          case 1: return TechniqueConfig::withFusion();
          case 2: return TechniqueConfig::withCompression();
          case 3: return TechniqueConfig::combined();
          default: return TechniqueConfig::combinedLocality();
        }
    }
};

TEST_P(TrainWithTechniques, ConvergesOnProductsAnalogue)
{
    Dataset dataset = makeDataset(DatasetId::Products, /*scaleShift=*/8);
    SyntheticTask task =
        makeSyntheticTask(dataset.graph, 4, 16, 0.3, 101);

    GnnModelConfig config;
    config.kind = GnnKind::Sage;
    config.featureWidths = {16, 32, 4};
    config.dropoutRate = 0.2;
    GnnModel model(dataset.graph, config);

    TrainerConfig tc;
    tc.epochs = 10;
    tc.learningRate = 0.3f;
    tc.tech = tech();
    Trainer trainer(model, task.features, task.labels, tc);
    auto history = trainer.train();
    EXPECT_LT(history.back().loss, history.front().loss);
    EXPECT_GT(history.back().trainAccuracy, 0.4);
}

INSTANTIATE_TEST_SUITE_P(Techniques, TrainWithTechniques,
                         testing::Values(0, 1, 2, 3, 4));

TEST(Integration, GcnTrainingOnAllDatasetAnalogues)
{
    for (DatasetId id : allDatasets()) {
        Dataset dataset = makeDataset(id, /*scaleShift=*/9);
        SyntheticTask task =
            makeSyntheticTask(dataset.graph, 3, 8, 0.3, 103);
        GnnModelConfig config;
        config.kind = GnnKind::Gcn;
        config.featureWidths = {8, 16, 3};
        config.dropoutRate = 0.0;
        GnnModel model(dataset.graph, config);
        TrainerConfig tc;
        tc.epochs = 6;
        tc.learningRate = 0.3f;
        Trainer trainer(model, task.features, task.labels, tc);
        auto history = trainer.train();
        EXPECT_LT(history.back().loss, history.front().loss)
            << datasetSpec(id).name;
    }
}

TEST(Integration, DmaLayerInsideTrainingForwardMatchesSoftware)
{
    // Swap the first layer's forward aggregation+update with the
    // functional DMA pipeline and check the logits agree with the
    // software path — the hardware must be arithmetically transparent.
    Dataset dataset = makeDataset(DatasetId::Wikipedia, /*scaleShift=*/9);
    const CsrGraph &g = dataset.graph;
    AggregationSpec spec = gcnSpec(g);

    DenseMatrix input(g.numVertices(), 64);
    input.fillUniform(-1.0f, 1.0f, 104);
    DenseMatrix weights(64, 32);
    weights.fillUniform(-0.2f, 0.2f, 105);
    std::vector<Feature> bias(32, 0.01f);
    const UpdateOp update{&weights, bias, true};

    DenseMatrix aggSw(g.numVertices(), 64);
    DenseMatrix outSw(g.numVertices(), 32);
    fusedLayerTraining(g, input, spec, update, aggSw, outSw);

    DenseMatrix aggHw(g.numVertices(), 64);
    DenseMatrix outHw(g.numVertices(), 32);
    dma::pipelinedDmaLayer(g, input, spec, update, aggHw, outHw);

    EXPECT_LT(outSw.maxAbsDiff(outHw), 1e-4);
    EXPECT_LT(aggSw.maxAbsDiff(aggHw), 1e-4);
}

TEST(Integration, LocalityOrderImprovesReuseOnProductsAnalogue)
{
    // The Section 7.2.4 claim at test scale: the locality order beats a
    // random order on the reuse-distance proxy for the high-degree
    // products analogue.
    Dataset dataset = makeDataset(DatasetId::Products, /*scaleShift=*/5);
    const CsrGraph &g = dataset.graph;
    const double loc = averageReuseDistance(g, localityOrder(g), 1 << 14);
    const double rnd = averageReuseDistance(g, randomOrder(g, 7), 1 << 14);
    EXPECT_LT(loc, rnd * 0.9);
}

TEST(Integration, InferenceIsDeterministicAcrossRuns)
{
    Dataset dataset = makeDataset(DatasetId::Papers, /*scaleShift=*/10);
    GnnModelConfig config;
    config.featureWidths = {32, 32, 4};
    config.dropoutRate = 0.5; // must not affect inference
    GnnModel model(dataset.graph, config);
    DenseMatrix features(dataset.graph.numVertices(), 32);
    features.fillUniform(-1.0f, 1.0f, 106);
    const DenseMatrix a =
        model.inference(features, TechniqueConfig::combined());
    const DenseMatrix b =
        model.inference(features, TechniqueConfig::combined());
    EXPECT_DOUBLE_EQ(a.maxAbsDiff(b), 0.0);
}

} // namespace
} // namespace graphite
