/**
 * @file
 * Tests of the processing orders (paper Algorithm 3 and the Figure 15
 * controls): permutation invariants and the locality property itself —
 * the greedy order must shorten average reuse distance versus a random
 * order on graphs with shared neighbors.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/reorder.h"

namespace graphite {
namespace {

class ReorderOnGraphs : public testing::TestWithParam<int>
{
  protected:
    CsrGraph
    makeGraph() const
    {
        switch (GetParam()) {
          case 0:
            return generateRing(256, 2);
          case 1:
            return generateErdosRenyi(1000, 8000, false, 5);
          case 2:
            return generateBarabasiAlbert(800, 4, 9);
          default: {
            RmatParams params;
            params.scale = 10;
            params.avgDegree = 12.0;
            return generateRmat(params);
          }
        }
    }
};

TEST_P(ReorderOnGraphs, LocalityOrderIsPermutation)
{
    CsrGraph g = makeGraph();
    EXPECT_TRUE(isPermutation(g, localityOrder(g)));
}

TEST_P(ReorderOnGraphs, RandomOrderIsPermutation)
{
    CsrGraph g = makeGraph();
    EXPECT_TRUE(isPermutation(g, randomOrder(g, 17)));
}

TEST_P(ReorderOnGraphs, DegreeOrderIsPermutationAndSorted)
{
    CsrGraph g = makeGraph();
    ProcessingOrder order = degreeOrder(g);
    EXPECT_TRUE(isPermutation(g, order));
    for (std::size_t i = 1; i < order.size(); ++i)
        EXPECT_GE(g.degree(order[i - 1]), g.degree(order[i]));
}

TEST_P(ReorderOnGraphs, LocalityOrderBeatsRandomReuseDistance)
{
    CsrGraph g = makeGraph();
    const double locality = averageReuseDistance(g, localityOrder(g));
    const double random = averageReuseDistance(g, randomOrder(g, 23));
    EXPECT_LT(locality, random);
}

INSTANTIATE_TEST_SUITE_P(Graphs, ReorderOnGraphs,
                         testing::Values(0, 1, 2, 3));

TEST(LocalityOrder, GroupsVerticesByHighestDegreeNeighbor)
{
    // Star: vertex 0 is the hub; every leaf's highest-degree neighbor
    // is 0, so all leaves land in bucket L_0 and appear consecutively.
    GraphBuilder builder(6);
    for (VertexId leaf = 1; leaf < 6; ++leaf)
        builder.addUndirectedEdge(0, leaf);
    CsrGraph g = builder.build();
    ProcessingOrder order = localityOrder(g);
    ASSERT_EQ(order.size(), 6u);
    // All 6 vertices (hub + leaves) share bucket L_0, so the order is a
    // single contiguous bucket — any permutation is acceptable, but the
    // bucket structure means vertex 0's bucket must contain everything.
    EXPECT_TRUE(isPermutation(g, order));
}

TEST(LocalityOrder, DeterministicTieBreaking)
{
    CsrGraph g = generateErdosRenyi(500, 3000, false, 2);
    EXPECT_EQ(localityOrder(g), localityOrder(g));
}

TEST(LocalityOrder, LinearTimeOnLargeGraph)
{
    RmatParams params;
    params.scale = 15;
    params.avgDegree = 16.0;
    CsrGraph g = generateRmat(params);
    ProcessingOrder order = localityOrder(g);
    EXPECT_TRUE(isPermutation(g, order));
}

TEST(ReorderEdgeCases, EmptyGraphYieldsEmptyOrders)
{
    // bfsOrder used to write visited[0] on a vertex-free graph.
    CsrGraph g({0}, {});
    EXPECT_TRUE(identityOrder(g).empty());
    EXPECT_TRUE(randomOrder(g, 5).empty());
    EXPECT_TRUE(degreeOrder(g).empty());
    EXPECT_TRUE(bfsOrder(g).empty());
    EXPECT_TRUE(localityOrder(g).empty());
}

TEST(ReorderEdgeCases, SingleVertexNoEdges)
{
    CsrGraph g({0, 0}, {});
    const ProcessingOrder expected{0};
    EXPECT_EQ(identityOrder(g), expected);
    EXPECT_EQ(degreeOrder(g), expected);
    EXPECT_EQ(bfsOrder(g), expected);
    EXPECT_EQ(localityOrder(g), expected);
}

TEST(ReorderEdgeCases, DisconnectedComponentsAreAllVisited)
{
    // Two separate triangles plus two isolated vertices: bfsOrder must
    // restart per component and still emit a permutation.
    GraphBuilder builder(8);
    builder.addUndirectedEdge(0, 1);
    builder.addUndirectedEdge(1, 2);
    builder.addUndirectedEdge(2, 0);
    builder.addUndirectedEdge(4, 5);
    builder.addUndirectedEdge(5, 6);
    builder.addUndirectedEdge(6, 4);
    CsrGraph g = builder.build();
    EXPECT_TRUE(isPermutation(g, bfsOrder(g)));
    EXPECT_TRUE(isPermutation(g, localityOrder(g)));
    EXPECT_TRUE(isPermutation(g, degreeOrder(g)));
}

TEST(ReorderEdgeCases, IsolatedVerticesKeepOwnBucket)
{
    // Isolated vertices have no neighbors, so Algorithm 3 must bucket
    // each under itself (bucketOf[v] == v) and still emit everything.
    GraphBuilder builder(10);
    builder.addUndirectedEdge(0, 1); // one tiny component, 8 isolated
    CsrGraph g = builder.build();
    ProcessingOrder order = localityOrder(g);
    EXPECT_TRUE(isPermutation(g, order));
    EXPECT_TRUE(isPermutation(g, bfsOrder(g)));
}

TEST(ReorderEdgeCases, SelfLoopsDoNotCaptureBuckets)
{
    // GraphBuilder strips self-loops, so construct the CSR directly:
    // 0->{0,1}, 1->{0}, 2->{2} — degrees count the loop edges.
    CsrGraph g({0, 2, 3, 4}, {0, 1, 0, 2});
    ProcessingOrder order = localityOrder(g);
    EXPECT_TRUE(isPermutation(g, order));
    EXPECT_TRUE(isPermutation(g, bfsOrder(g)));
    EXPECT_TRUE(isPermutation(g, degreeOrder(g)));
    // Vertex 1's highest-degree neighbor is 0 (degree 2 beats its own
    // 1), so 1 joins bucket L_0 and follows 0 in the emitted order.
    auto pos = [&](VertexId v) {
        return std::find(order.begin(), order.end(), v) - order.begin();
    };
    EXPECT_EQ(pos(0) + 1, pos(1));
}

TEST(ReuseDistance, IdentityOrderOnRingIsShort)
{
    // Consecutive ring vertices share neighbors, so the identity order
    // already has near-ideal locality; random should be much worse.
    CsrGraph g = generateRing(4096);
    const double ident = averageReuseDistance(g, identityOrder(g), 4096);
    const double random = averageReuseDistance(g, randomOrder(g, 3), 4096);
    EXPECT_LT(ident * 4, random);
}

TEST(ReuseDistance, CapBoundsLongReuses)
{
    CsrGraph g = generateRing(1024);
    const double d = averageReuseDistance(g, randomOrder(g, 13), 10);
    EXPECT_LE(d, 10.0);
    EXPECT_GT(d, 0.0);
}

} // namespace
} // namespace graphite
