/**
 * @file
 * Unit tests for the common substrate: aligned buffers, RNG, options.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/options.h"
#include "common/rng.h"
#include "common/timer.h"

namespace graphite {
namespace {

TEST(AlignedBuffer, AllocatesAlignedZeroedStorage)
{
    AlignedBuffer<float> buf(100);
    ASSERT_EQ(buf.size(), 100u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64, 0u);
    for (float v : buf)
        EXPECT_EQ(v, 0.0f);
}

TEST(AlignedBuffer, EmptyBufferIsSafe)
{
    AlignedBuffer<int> buf;
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.data(), nullptr);
    buf.zero(); // must not crash
}

TEST(AlignedBuffer, CopyPreservesContents)
{
    AlignedBuffer<int> a(16);
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] = static_cast<int>(i * 3);
    AlignedBuffer<int> b(a);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(b[i], a[i]);
    b[0] = 999;
    EXPECT_EQ(a[0], 0); // deep copy
}

TEST(AlignedBuffer, MoveTransfersOwnership)
{
    AlignedBuffer<int> a(8);
    a[3] = 42;
    int *ptr = a.data();
    AlignedBuffer<int> b(std::move(a));
    EXPECT_EQ(b.data(), ptr);
    EXPECT_EQ(b[3], 42);
    EXPECT_EQ(a.data(), nullptr);
    EXPECT_TRUE(a.empty());
}

TEST(AlignedBuffer, CopyAssignReplacesContents)
{
    AlignedBuffer<int> a(4);
    a[0] = 7;
    AlignedBuffer<int> b(2);
    b = a;
    ASSERT_EQ(b.size(), 4u);
    EXPECT_EQ(b[0], 7);
}

TEST(AlignedBuffer, ResizeZeroes)
{
    AlignedBuffer<int> a(4);
    a[0] = 7;
    a.resize(32);
    ASSERT_EQ(a.size(), 32u);
    for (int v : a)
        EXPECT_EQ(v, 0);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.uniformInt(10);
        ASSERT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u); // all values reachable
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    double sum = 0.0;
    double sumSq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sumSq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sumSq / n, 1.0, 0.05);
}

TEST(Options, ParsesEqualsAndSpaceForms)
{
    Options opts("test");
    opts.add("alpha", "1", "help");
    opts.add("name", "x", "help");
    opts.add("flag", "false", "help");
    const char *argv[] = {"prog", "--alpha=42", "--name", "hello",
                          "--flag"};
    opts.parse(5, const_cast<char **>(argv));
    EXPECT_EQ(opts.getInt("alpha"), 42);
    EXPECT_EQ(opts.getString("name"), "hello");
    EXPECT_TRUE(opts.getBool("flag"));
}

TEST(Options, DefaultsApplyWhenUnset)
{
    Options opts("test");
    opts.add("rate", "0.5", "help");
    const char *argv[] = {"prog"};
    opts.parse(1, const_cast<char **>(argv));
    EXPECT_DOUBLE_EQ(opts.getDouble("rate"), 0.5);
}

TEST(Options, NegativeValuesParseInBothForms)
{
    Options opts("test");
    opts.add("bias", "0", "help");
    opts.add("rate", "0.0", "help");
    // The space form used to mistake "-3" for the next flag.
    const char *argv[] = {"prog", "--bias", "-3", "--rate", "-0.25"};
    opts.parse(5, const_cast<char **>(argv));
    EXPECT_EQ(opts.getInt("bias"), -3);
    EXPECT_DOUBLE_EQ(opts.getDouble("rate"), -0.25);
}

TEST(Options, NegativeValueEqualsForm)
{
    Options opts("test");
    opts.add("bias", "0", "help");
    const char *argv[] = {"prog", "--bias=-7"};
    opts.parse(2, const_cast<char **>(argv));
    EXPECT_EQ(opts.getInt("bias"), -7);
}

TEST(Options, SpaceFormStillTreatsFlagAsBoolean)
{
    Options opts("test");
    opts.add("flag", "false", "help");
    opts.add("other", "false", "help");
    // "--other" is not a value, so "--flag" takes its boolean form.
    const char *argv[] = {"prog", "--flag", "--other"};
    opts.parse(3, const_cast<char **>(argv));
    EXPECT_TRUE(opts.getBool("flag"));
    EXPECT_TRUE(opts.getBool("other"));
}

TEST(OptionsDeathTest, EmptyEqualsValueIsFatal)
{
    Options opts("test");
    opts.add("path", "x", "help");
    const char *argv[] = {"prog", "--path="};
    // An explicit "=" with nothing after it used to silently clear the
    // option; now it is a configuration error.
    EXPECT_DEATH(opts.parse(2, const_cast<char **>(argv)),
                 "empty value");
}

TEST(Options, RepeatedFlagLastWins)
{
    Options opts("test");
    opts.add("alpha", "1", "help");
    const char *argv[] = {"prog", "--alpha=2", "--alpha", "5"};
    opts.parse(4, const_cast<char **>(argv));
    EXPECT_EQ(opts.getInt("alpha"), 5);
}

TEST(Options, GetDefaultSurvivesParse)
{
    Options opts("test");
    opts.add("alpha", "1", "help");
    const char *argv[] = {"prog", "--alpha=42"};
    opts.parse(2, const_cast<char **>(argv));
    EXPECT_EQ(opts.getInt("alpha"), 42);
    EXPECT_EQ(opts.getDefault("alpha"), "1");
}

TEST(Timer, MeasuresElapsedTime)
{
    Timer timer;
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i)
        sink = sink + i * 0.5;
    EXPECT_GE(timer.seconds(), 0.0);
    EXPECT_LT(timer.seconds(), 10.0);
}

} // namespace
} // namespace graphite
