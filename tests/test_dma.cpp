/**
 * @file
 * Tests of the DMA functional model (paper Section 5): descriptor
 * layout/validation, Algorithm 4 execution against the software
 * aggregation, descriptor splitting for wide feature vectors, fault
 * handling, and the Algorithm 5 pipelined runner.
 */

#include <gtest/gtest.h>

#include "dma/descriptor.h"
#include "dma/dma_engine.h"
#include "dma/pipelined_runner.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "kernels/fused_layer.h"

namespace graphite {
namespace {

using dma::AggregationDescriptor;
using dma::BinOp;
using dma::CompletionStatus;
using dma::DmaEngine;
using dma::EngineConfig;
using dma::IdxType;
using dma::PipelineConfig;
using dma::RedOp;
using dma::ValType;

TEST(Descriptor, Is64Bytes)
{
    EXPECT_EQ(sizeof(AggregationDescriptor), 64u);
}

TEST(Descriptor, ValidationCatchesBadFields)
{
    AggregationDescriptor desc;
    EXPECT_NE(dma::validateDescriptor(desc), nullptr); // E == 0

    desc.elementsPerBlock = 16;
    desc.paddedBlockBytes = 8; // E doesn't fit in S
    EXPECT_NE(dma::validateDescriptor(desc), nullptr);

    desc.paddedBlockBytes = 64;
    desc.numBlocks = 1;
    EXPECT_NE(dma::validateDescriptor(desc), nullptr); // no IDX

    float data[16] = {};
    float out[16] = {};
    std::uint32_t idx[1] = {0};
    desc.indexAddr = reinterpret_cast<std::uint64_t>(idx);
    desc.inputBase = reinterpret_cast<std::uint64_t>(data);
    desc.outputAddr = reinterpret_cast<std::uint64_t>(out);
    EXPECT_EQ(dma::validateDescriptor(desc), nullptr);

    desc.binOp = BinOp::Multiply; // needs FACTOR
    EXPECT_NE(dma::validateDescriptor(desc), nullptr);
}

TEST(Descriptor, ValidationCatchesCorruptedEncodings)
{
    // A well-formed descriptor, then corrupt one field at a time; the
    // validator must name every corruption. Enum fields arrive as raw
    // bytes from the descriptor queue, so out-of-range encodings are
    // exactly what a flipped bit produces.
    alignas(8) float data[16] = {};
    alignas(8) float out[16] = {};
    alignas(8) std::uint32_t idx[2] = {0, 1};
    AggregationDescriptor good;
    good.elementsPerBlock = 16;
    good.paddedBlockBytes = 64;
    good.numBlocks = 2;
    good.indexAddr = reinterpret_cast<std::uint64_t>(idx);
    good.inputBase = reinterpret_cast<std::uint64_t>(data);
    good.outputAddr = reinterpret_cast<std::uint64_t>(out);
    ASSERT_EQ(dma::validateDescriptor(good), nullptr);

    AggregationDescriptor desc = good;
    desc.redOp = static_cast<RedOp>(7);
    EXPECT_NE(dma::validateDescriptor(desc), nullptr);

    desc = good;
    desc.binOp = static_cast<BinOp>(200);
    EXPECT_NE(dma::validateDescriptor(desc), nullptr);

    desc = good;
    desc.idxType = static_cast<IdxType>(3);
    EXPECT_NE(dma::validateDescriptor(desc), nullptr);

    desc = good;
    desc.valType = static_cast<ValType>(1);
    EXPECT_NE(dma::validateDescriptor(desc), nullptr);

    desc = good;
    desc.paddedBlockBytes = 66; // not a multiple of the value size
    EXPECT_NE(dma::validateDescriptor(desc), nullptr);
}

TEST(Descriptor, ValidationCatchesMisalignedAddresses)
{
    alignas(8) float data[16] = {};
    alignas(8) float out[16] = {};
    alignas(8) std::uint32_t idx[2] = {0, 1};
    AggregationDescriptor good;
    good.elementsPerBlock = 16;
    good.paddedBlockBytes = 64;
    good.numBlocks = 2;
    good.indexAddr = reinterpret_cast<std::uint64_t>(idx);
    good.inputBase = reinterpret_cast<std::uint64_t>(data);
    good.outputAddr = reinterpret_cast<std::uint64_t>(out);
    ASSERT_EQ(dma::validateDescriptor(good), nullptr);

    AggregationDescriptor desc = good;
    desc.inputBase += 2; // engine issues 4-byte value loads
    EXPECT_NE(dma::validateDescriptor(desc), nullptr);

    desc = good;
    desc.outputAddr += 1;
    EXPECT_NE(dma::validateDescriptor(desc), nullptr);

    desc = good;
    desc.indexAddr += 2; // u32 indices need 4-byte alignment
    EXPECT_NE(dma::validateDescriptor(desc), nullptr);

    // The same address can be fine for u32 but misaligned for u64.
    desc = good;
    desc.indexAddr += 4;
    EXPECT_EQ(dma::validateDescriptor(desc), nullptr);
    desc.idxType = IdxType::U64;
    EXPECT_NE(dma::validateDescriptor(desc), nullptr);
}

TEST(DmaEngine, SumGatherMatchesManualReduction)
{
    // Three blocks of 4 elements at stride 32 bytes (8 floats).
    alignas(64) float input[3 * 8] = {};
    for (int b = 0; b < 3; ++b) {
        for (int j = 0; j < 4; ++j)
            input[b * 8 + j] = static_cast<float>(b * 10 + j);
    }
    std::uint32_t idx[3] = {2, 0, 1};
    float factors[3] = {1.0f, 2.0f, 3.0f};
    float out[4] = {};
    std::uint8_t status = 0;

    AggregationDescriptor desc;
    desc.redOp = RedOp::Sum;
    desc.binOp = BinOp::Multiply;
    desc.elementsPerBlock = 4;
    desc.paddedBlockBytes = 32;
    desc.numBlocks = 3;
    desc.indexAddr = reinterpret_cast<std::uint64_t>(idx);
    desc.inputBase = reinterpret_cast<std::uint64_t>(input);
    desc.outputAddr = reinterpret_cast<std::uint64_t>(out);
    desc.factorAddr = reinterpret_cast<std::uint64_t>(factors);
    desc.statusAddr = reinterpret_cast<std::uint64_t>(&status);

    DmaEngine engine;
    EXPECT_EQ(engine.execute(desc), CompletionStatus::Success);
    EXPECT_EQ(status,
              static_cast<std::uint8_t>(CompletionStatus::Success));
    for (int j = 0; j < 4; ++j) {
        const float expected = 1.0f * input[2 * 8 + j] +
                               2.0f * input[0 * 8 + j] +
                               3.0f * input[1 * 8 + j];
        EXPECT_FLOAT_EQ(out[j], expected);
    }
}

TEST(DmaEngine, MaxReductionWorks)
{
    alignas(64) float input[2 * 4] = {1.0f, -5.0f, 3.0f, 0.0f,
                                      2.0f, -1.0f, -3.0f, 7.0f};
    std::uint32_t idx[2] = {0, 1};
    float out[4] = {};
    AggregationDescriptor desc;
    desc.redOp = RedOp::Max;
    desc.binOp = BinOp::None;
    desc.elementsPerBlock = 4;
    desc.paddedBlockBytes = 16;
    desc.numBlocks = 2;
    desc.indexAddr = reinterpret_cast<std::uint64_t>(idx);
    desc.inputBase = reinterpret_cast<std::uint64_t>(input);
    desc.outputAddr = reinterpret_cast<std::uint64_t>(out);

    DmaEngine engine;
    EXPECT_EQ(engine.execute(desc), CompletionStatus::Success);
    EXPECT_FLOAT_EQ(out[0], 2.0f);
    EXPECT_FLOAT_EQ(out[1], -1.0f);
    EXPECT_FLOAT_EQ(out[2], 3.0f);
    EXPECT_FLOAT_EQ(out[3], 7.0f);
}

TEST(DmaEngine, ZeroBlocksYieldsIdentity)
{
    float out[4] = {9.0f, 9.0f, 9.0f, 9.0f};
    float in = 0.0f;
    AggregationDescriptor desc;
    desc.redOp = RedOp::Sum;
    desc.elementsPerBlock = 4;
    desc.paddedBlockBytes = 16;
    desc.numBlocks = 0;
    desc.inputBase = reinterpret_cast<std::uint64_t>(&in);
    desc.outputAddr = reinterpret_cast<std::uint64_t>(out);
    DmaEngine engine;
    EXPECT_EQ(engine.execute(desc), CompletionStatus::Success);
    for (float v : out)
        EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(DmaEngine, OversizedBlockFaults)
{
    // E = 1024 floats exceeds the default 2 KB output buffer (512).
    float dummy = 0.0f;
    std::uint8_t status = 0;
    AggregationDescriptor desc;
    desc.elementsPerBlock = 1024;
    desc.paddedBlockBytes = 4096;
    desc.numBlocks = 0;
    desc.inputBase = reinterpret_cast<std::uint64_t>(&dummy);
    desc.outputAddr = reinterpret_cast<std::uint64_t>(&dummy);
    desc.statusAddr = reinterpret_cast<std::uint64_t>(&status);
    DmaEngine engine;
    EXPECT_EQ(engine.execute(desc), CompletionStatus::Fault);
    EXPECT_EQ(status, static_cast<std::uint8_t>(CompletionStatus::Fault));
    EXPECT_EQ(engine.counters().descriptorsFaulted, 1u);
}

TEST(DmaEngine, QueueRespectsCapacity)
{
    EngineConfig config;
    config.descriptorQueue = 2;
    DmaEngine engine(config);
    // The output write covers elementsPerBlock floats, so the backing
    // buffer must span the whole block, not a single float.
    float dummy[4] = {};
    AggregationDescriptor desc;
    desc.elementsPerBlock = 4;
    desc.paddedBlockBytes = 16;
    desc.inputBase = reinterpret_cast<std::uint64_t>(dummy);
    desc.outputAddr = reinterpret_cast<std::uint64_t>(dummy);
    EXPECT_TRUE(engine.enqueue(desc));
    EXPECT_TRUE(engine.enqueue(desc));
    EXPECT_FALSE(engine.enqueue(desc)); // full
    engine.processAll();
    EXPECT_TRUE(engine.enqueue(desc));
}

struct DmaLayerFixture
{
    CsrGraph graph;
    AggregationSpec spec;
    DenseMatrix input;
    DenseMatrix weights;
    std::vector<Feature> bias;

    explicit DmaLayerFixture(std::size_t f)
    {
        RmatParams params;
        params.scale = 8;
        params.avgDegree = 9.0;
        graph = generateRmat(params);
        spec = gcnSpec(graph);
        input = DenseMatrix(graph.numVertices(), f);
        input.fillUniform(-1.0f, 1.0f, 81);
        weights = DenseMatrix(f, 32);
        weights.fillUniform(-0.2f, 0.2f, 82);
        bias.assign(32, 0.02f);
    }
};

TEST(DmaAggregate, MatchesSoftwareAggregation)
{
    DmaLayerFixture fx(128);
    DenseMatrix viaDma(fx.graph.numVertices(), 128);
    DenseMatrix expected(fx.graph.numVertices(), 128);
    dma::dmaAggregate(fx.graph, fx.input, fx.spec, viaDma);
    aggregateReference(fx.graph, fx.input, expected, fx.spec);
    EXPECT_LT(viaDma.maxAbsDiff(expected), 1e-4);
}

TEST(DmaAggregate, SplitsWideFeatureVectors)
{
    // 640 floats > the 512-float output buffer: every vertex needs two
    // descriptors (the Section 5.2 splitting case).
    DmaLayerFixture fx(640);
    DenseMatrix viaDma(fx.graph.numVertices(), 640);
    DenseMatrix expected(fx.graph.numVertices(), 640);
    auto counters = dma::dmaAggregate(fx.graph, fx.input, fx.spec, viaDma);
    aggregateReference(fx.graph, fx.input, expected, fx.spec);
    EXPECT_LT(viaDma.maxAbsDiff(expected), 1e-4);
    EXPECT_EQ(counters.descriptors, 2u * fx.graph.numVertices());
    EXPECT_GT(counters.splitDescriptors, 0u);
}

TEST(PipelinedRunner, MatchesFusedSoftwareLayer)
{
    DmaLayerFixture fx(96);
    const UpdateOp update{&fx.weights, fx.bias, true};

    DenseMatrix refAgg(fx.graph.numVertices(), 96);
    DenseMatrix refOut(fx.graph.numVertices(), 32);
    unfusedLayer(fx.graph, fx.input, fx.spec, update, refAgg, refOut);

    DenseMatrix agg(fx.graph.numVertices(), 96);
    DenseMatrix out(fx.graph.numVertices(), 32);
    dma::pipelinedDmaLayer(fx.graph, fx.input, fx.spec, update, agg, out);
    EXPECT_LT(agg.maxAbsDiff(refAgg), 1e-4);
    EXPECT_LT(out.maxAbsDiff(refOut), 1e-4);
}

TEST(PipelinedRunner, RespectsProcessingOrder)
{
    DmaLayerFixture fx(64);
    const UpdateOp update{&fx.weights, fx.bias, true};
    ProcessingOrder order = localityOrder(fx.graph);

    DenseMatrix refAgg(fx.graph.numVertices(), 64);
    DenseMatrix refOut(fx.graph.numVertices(), 32);
    unfusedLayer(fx.graph, fx.input, fx.spec, update, refAgg, refOut);

    DenseMatrix agg(fx.graph.numVertices(), 64);
    DenseMatrix out(fx.graph.numVertices(), 32);
    dma::pipelinedDmaLayer(fx.graph, fx.input, fx.spec, update, agg, out,
                           order);
    EXPECT_LT(out.maxAbsDiff(refOut), 1e-4);
}

TEST(PipelinedRunner, SmallBlocksAndQueuePressure)
{
    DmaLayerFixture fx(48);
    const UpdateOp update{&fx.weights, fx.bias, true};
    PipelineConfig config;
    config.blockSize = 3;
    config.blocksPerTask = 2;
    config.engine.descriptorQueue = 2; // force mid-block drains

    DenseMatrix refAgg(fx.graph.numVertices(), 48);
    DenseMatrix refOut(fx.graph.numVertices(), 32);
    unfusedLayer(fx.graph, fx.input, fx.spec, update, refAgg, refOut);

    DenseMatrix agg(fx.graph.numVertices(), 48);
    DenseMatrix out(fx.graph.numVertices(), 32);
    dma::pipelinedDmaLayer(fx.graph, fx.input, fx.spec, update, agg, out,
                           {}, config);
    EXPECT_LT(out.maxAbsDiff(refOut), 1e-4);
}

} // namespace
} // namespace graphite
