/**
 * @file
 * Differential tests pinning the DistGNN- and MKL-style baselines to
 * the reference math — the comparisons in Figure 11 are only fair if
 * all implementations compute identical results.
 */

#include <gtest/gtest.h>

#include "baselines/baseline_layers.h"
#include "graph/generators.h"
#include "kernels/fused_layer.h"
#include "tensor/spmm.h"

namespace graphite {
namespace {

struct Fixture
{
    CsrGraph graph;
    AggregationSpec spec;
    DenseMatrix input;
    DenseMatrix weights;
    std::vector<Feature> bias;

    Fixture()
    {
        RmatParams params;
        params.scale = 8;
        params.avgDegree = 10.0;
        graph = generateRmat(params);
        spec = gcnSpec(graph);
        input = DenseMatrix(graph.numVertices(), 64);
        input.fillUniform(-1.0f, 1.0f, 71);
        weights = DenseMatrix(64, 48);
        weights.fillUniform(-0.3f, 0.3f, 72);
        bias.assign(48, -0.05f);
    }

    UpdateOp
    update() const
    {
        return UpdateOp{&weights, bias, true};
    }
};

TEST(Baselines, DistGnnAggregationMatchesReference)
{
    Fixture fx;
    DenseMatrix out(fx.graph.numVertices(), 64);
    DenseMatrix expected(fx.graph.numVertices(), 64);
    distgnnAggregate(fx.graph, fx.input, out, fx.spec);
    aggregateReference(fx.graph, fx.input, expected, fx.spec);
    EXPECT_LT(out.maxAbsDiff(expected), 1e-4);
}

TEST(Baselines, DistGnnLayerMatchesGraphiteUnfused)
{
    Fixture fx;
    DenseMatrix aggA(fx.graph.numVertices(), 64);
    DenseMatrix outA(fx.graph.numVertices(), 48);
    distgnnLayer(fx.graph, fx.input, fx.spec, fx.update(), aggA, outA);

    DenseMatrix aggB(fx.graph.numVertices(), 64);
    DenseMatrix outB(fx.graph.numVertices(), 48);
    unfusedLayer(fx.graph, fx.input, fx.spec, fx.update(), aggB, outB);
    EXPECT_LT(outA.maxAbsDiff(outB), 1e-4);
}

TEST(Baselines, MklLayerMatchesGraphiteUnfused)
{
    Fixture fx;
    DenseMatrix aggA(fx.graph.numVertices(), 64);
    DenseMatrix outA(fx.graph.numVertices(), 48);
    mklLayer(fx.graph, fx.input, fx.spec, fx.update(), aggA, outA);

    DenseMatrix aggB(fx.graph.numVertices(), 64);
    DenseMatrix outB(fx.graph.numVertices(), 48);
    unfusedLayer(fx.graph, fx.input, fx.spec, fx.update(), aggB, outB);
    EXPECT_LT(outA.maxAbsDiff(outB), 1e-4);
}

TEST(Baselines, AllThreeAgreeOnSageSpec)
{
    Fixture fx;
    AggregationSpec sage = sageSpec(fx.graph);
    DenseMatrix a(fx.graph.numVertices(), 64);
    DenseMatrix b(fx.graph.numVertices(), 64);
    DenseMatrix c(fx.graph.numVertices(), 64);
    distgnnAggregate(fx.graph, fx.input, a, sage);
    spmm(fx.graph, fx.input, b, sage.edgeFactors, sage.selfFactors);
    aggregateBasic(fx.graph, fx.input, c, sage);
    EXPECT_LT(a.maxAbsDiff(b), 1e-4);
    EXPECT_LT(a.maxAbsDiff(c), 1e-4);
}

} // namespace
} // namespace graphite
