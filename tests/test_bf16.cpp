/**
 * @file
 * Tests of the end-to-end bf16 compute path: scalar rounding edge
 * cases (RNE ties, NaN/Inf, denormals, round-trip bound), the packed
 * bf16 GEMM against an fp64 oracle over ragged shapes on both dispatch
 * targets (native and emulated), bf16 aggregation and fused-layer
 * consistency, gather-byte accounting (the 2x traffic claim), and a
 * full-model gradient-parity sweep at bf16 with documented relaxed
 * tolerances.
 *
 * Every test here carries the `bf16` ctest label; CI re-runs the label
 * with GRAPHITE_BF16_EMULATE=1 so the emulated widening kernel is
 * exercised even on AVX512-BF16 hardware.
 */

#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <tuple>
#include <vector>

#include "gnn/gnn_model.h"
#include "graph/generators.h"
#include "kernels/aggregation.h"
#include "kernels/fused_layer.h"
#include "obs/metrics.h"
#include "tensor/bf16_matrix.h"
#include "tensor/gemm.h"
#include "tensor/row_ops.h"

namespace graphite {
namespace {

CsrGraph
testGraph()
{
    return generateErdosRenyi(150, 1200, false, 97);
}

float
roundBf16(float x)
{
    return bf16ToFloat(bf16FromFloat(x));
}

std::uint32_t
floatBits(float x)
{
    std::uint32_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    return bits;
}

float
fromBits(std::uint32_t bits)
{
    float x;
    std::memcpy(&x, &bits, sizeof(x));
    return x;
}

// ---------------------------------------------------------------------
// Scalar conversion: the edges of round-to-nearest-even.
// ---------------------------------------------------------------------

TEST(Bf16Rounding, ExactValuesPassThrough)
{
    // Anything already representable in 8 exponent + 7 mantissa bits
    // must survive the round trip bit-exactly.
    for (const float x : {0.0f, 1.0f, -1.0f, 0.5f, -2.5f, 1024.0f,
                          0.15625f, -3.140625f}) {
        EXPECT_EQ(floatBits(roundBf16(x)), floatBits(x)) << x;
    }
    // Negative zero keeps its sign.
    EXPECT_EQ(floatBits(roundBf16(-0.0f)), floatBits(-0.0f));
}

TEST(Bf16Rounding, TiesGoToEven)
{
    // 0x...8000 is exactly halfway between two bf16 neighbors. With the
    // keep bit (bit 16) clear the tie must round *down* (stay even)...
    EXPECT_EQ(bf16FromFloat(fromBits(0x3f808000u)), 0x3f80u);
    // ...and with the keep bit set it must round *up* to the next even.
    EXPECT_EQ(bf16FromFloat(fromBits(0x3f818000u)), 0x3f82u);
    // One ulp above the halfway point always rounds up.
    EXPECT_EQ(bf16FromFloat(fromBits(0x3f808001u)), 0x3f81u);
    // One below always rounds down.
    EXPECT_EQ(bf16FromFloat(fromBits(0x3f807fffu)), 0x3f80u);
}

TEST(Bf16Rounding, InfinityAndNaN)
{
    const float inf = std::numeric_limits<float>::infinity();
    EXPECT_EQ(bf16FromFloat(inf), 0x7f80u);
    EXPECT_EQ(bf16FromFloat(-inf), 0xff80u);
    EXPECT_TRUE(std::isinf(roundBf16(inf)));

    // Quiet NaN stays NaN.
    EXPECT_TRUE(std::isnan(roundBf16(std::nanf(""))));
    // Signaling NaN (low-mantissa-only payload) must stay NaN — the
    // naive RNE increment would carry it into the exponent and produce
    // +Inf. The payload is quietened instead.
    const float snan = fromBits(0x7f800001u);
    EXPECT_TRUE(std::isnan(roundBf16(snan)));
    const float negSnan = fromBits(0xff800001u);
    EXPECT_TRUE(std::isnan(roundBf16(negSnan)));
    EXPECT_TRUE(std::signbit(roundBf16(negSnan)));

    // Values beyond the largest finite bf16 round to Inf (matching
    // hardware vcvtneps2bf16), not to a garbage finite value.
    EXPECT_TRUE(std::isinf(roundBf16(FLT_MAX)));
    EXPECT_TRUE(std::isinf(roundBf16(-FLT_MAX)));
    EXPECT_TRUE(std::signbit(roundBf16(-FLT_MAX)));
}

TEST(Bf16Rounding, Denormals)
{
    // fp32 denormals map onto bf16 denormals (same exponent range, top
    // 7 mantissa bits), so the round trip obeys the absolute bound of
    // half a denormal ulp (2^-133) instead of a relative one.
    const float tiny = fromBits(0x00018000u); // denormal, tie pattern
    const float rt = roundBf16(tiny);
    EXPECT_LE(std::abs(rt - tiny), std::ldexp(1.0f, -133));
    // The smallest denormal rounds to zero, preserving sign.
    EXPECT_EQ(bf16FromFloat(fromBits(0x00000001u)), 0x0000u);
    EXPECT_EQ(bf16FromFloat(fromBits(0x80000001u)), 0x8000u);
}

TEST(Bf16Rounding, RoundTripRelativeBound)
{
    // RNE to 7 explicit mantissa bits: |x - rt(x)| <= 2^-8 |x| for all
    // normal x. Walk a deterministic pseudo-random sample.
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    for (int i = 0; i < 10000; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const auto mantissa = static_cast<std::uint32_t>(state >> 41);
        const std::uint32_t exponent = 64 + (state >> 33 & 0x7fu);
        const std::uint32_t sign = static_cast<std::uint32_t>(state >> 63)
                                   << 31;
        const float x =
            fromBits(sign | exponent << 23 | (mantissa & 0x7fffffu));
        const float rt = roundBf16(x);
        EXPECT_LE(std::abs(rt - x), std::ldexp(std::abs(x), -8))
            << "bits 0x" << std::hex << floatBits(x);
    }
}

TEST(Bf16Rounding, RowConvertersMatchScalar)
{
    std::vector<Feature> src(123);
    for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = std::sin(static_cast<float>(i) * 0.37f) * 40.0f;
    std::vector<std::uint16_t> packed(src.size());
    convertRowToBf16(src.data(), src.size(), packed.data());
    std::vector<Feature> restored(src.size());
    convertRowFromBf16(packed.data(), src.size(), restored.data());
    for (std::size_t i = 0; i < src.size(); ++i) {
        EXPECT_EQ(packed[i], bf16FromFloat(src[i])) << i;
        EXPECT_EQ(floatBits(restored[i]), floatBits(roundBf16(src[i])))
            << i;
    }
}

TEST(Bf16Matrix, RoundTripAndPaddingStayZero)
{
    DenseMatrix dense(37, 45); // ragged against both strides
    dense.fillUniform(-8.0f, 8.0f, 21);
    Bf16Matrix packed(37, 45);
    packed.fromDense(dense);
    DenseMatrix restored(37, 45);
    packed.toDense(restored);
    for (std::size_t r = 0; r < 37; ++r) {
        for (std::size_t c = 0; c < 45; ++c) {
            EXPECT_EQ(floatBits(restored.at(r, c)),
                      floatBits(roundBf16(dense.at(r, c))))
                << r << "," << c;
        }
        // The gather kernels read rows at full stride; padding must be
        // zero so over-reads contribute nothing.
        for (std::size_t c = 45; c < packed.rowStride(); ++c)
            EXPECT_EQ(packed.row(r)[c], 0u) << r << "," << c;
    }
}

// ---------------------------------------------------------------------
// Packed bf16 GEMM vs an fp64 oracle on the rounded operands.
// ---------------------------------------------------------------------

/**
 * Reference result in double precision from bf16-rounded operands: the
 * kernel rounds A and B to bf16 at pack time and accumulates the exact
 * bf16xbf16 products (each exact in fp32) in fp32, so the only
 * divergence from this oracle is fp32 accumulation order — a few ulp.
 */
std::vector<double>
oracleGemm(GemmMode mode, const DenseMatrix &a, const DenseMatrix &b,
           std::size_t m, std::size_t n, std::size_t k)
{
    const auto aAt = [&](std::size_t i, std::size_t p) {
        return mode == GemmMode::TN ? a.at(p, i) : a.at(i, p);
    };
    const auto bAt = [&](std::size_t p, std::size_t j) {
        return mode == GemmMode::NT ? b.at(j, p) : b.at(p, j);
    };
    std::vector<double> c(m * n, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t p = 0; p < k; ++p) {
            const double av = roundBf16(aAt(i, p));
            for (std::size_t j = 0; j < n; ++j)
                c[i * n + j] += av * roundBf16(bAt(p, j));
        }
    }
    return c;
}

/** (mode, m, n, k) — odd K, K=1 and tail panels all represented. */
using GemmShape = std::tuple<int, int, int, int>;

class Bf16GemmOracle : public ::testing::TestWithParam<GemmShape>
{
};

TEST_P(Bf16GemmOracle, MatchesFp64OnBothKernels)
{
    const auto [modeInt, m, n, k] = GetParam();
    const auto mode = static_cast<GemmMode>(modeInt);
    DenseMatrix a;
    DenseMatrix b;
    switch (mode) {
      case GemmMode::NN:
        a = DenseMatrix(m, k);
        b = DenseMatrix(k, n);
        break;
      case GemmMode::NT:
        a = DenseMatrix(m, k);
        b = DenseMatrix(n, k);
        break;
      case GemmMode::TN:
        a = DenseMatrix(k, m);
        b = DenseMatrix(k, n);
        break;
    }
    a.fillUniform(-1.0f, 1.0f, 31);
    b.fillUniform(-1.0f, 1.0f, 32);
    const std::vector<double> ref = oracleGemm(
        mode, a, b, static_cast<std::size_t>(m),
        static_cast<std::size_t>(n), static_cast<std::size_t>(k));

    // Accumulation-order slack only: a handful of fp32 ulp per k term.
    const double tol = 1e-6 * k + 1e-6;
    for (const bool emulated : {false, true}) {
        setBf16GemmEmulated(emulated);
        DenseMatrix c(m, n);
        gemm(mode, a, b, c, GemmAccumulate::Overwrite, Precision::Bf16);
        double maxErr = 0.0;
        for (int i = 0; i < m; ++i) {
            for (int j = 0; j < n; ++j) {
                maxErr = std::max(
                    maxErr, std::abs(static_cast<double>(c.at(i, j)) -
                                     ref[static_cast<std::size_t>(i) * n +
                                         j]));
            }
        }
        EXPECT_LE(maxErr, tol)
            << (emulated ? "emulated" : "dispatched") << " kernel";
    }
    setBf16GemmEmulated(false);
}

std::string
gemmShapeName(const ::testing::TestParamInfo<GemmShape> &info)
{
    const auto [mode, m, n, k] = info.param;
    const char *names[] = {"NN", "NT", "TN"};
    return std::string(names[mode]) + "_" + std::to_string(m) + "x" +
           std::to_string(n) + "x" + std::to_string(k);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Bf16GemmOracle,
    ::testing::Values(
        GemmShape{0, 64, 128, 128},  // exact register tiles, even K
        GemmShape{0, 70, 130, 129},  // ragged M/N tails, odd K
        GemmShape{0, 8, 32, 1},      // K=1: the odd-pair zero fill
        GemmShape{0, 9, 33, 2},      // single-row/col tail panels
        GemmShape{0, 1, 1, 3},       // degenerate
        GemmShape{0, 100, 20, 64},   // narrow N
        GemmShape{1, 70, 130, 129},  // NT, same ragged shape
        GemmShape{1, 33, 15, 7},
        GemmShape{2, 70, 130, 129},  // TN, same ragged shape
        GemmShape{2, 15, 257, 40}),
    gemmShapeName);

TEST(Bf16Gemm, AccumulateModeAddsToExisting)
{
    DenseMatrix a(21, 19);
    DenseMatrix b(19, 35);
    a.fillUniform(-1.0f, 1.0f, 41);
    b.fillUniform(-1.0f, 1.0f, 42);
    DenseMatrix once(21, 35);
    gemm(GemmMode::NN, a, b, once, GemmAccumulate::Overwrite,
         Precision::Bf16);
    DenseMatrix twice(21, 35);
    gemm(GemmMode::NN, a, b, twice, GemmAccumulate::Overwrite,
         Precision::Bf16);
    gemm(GemmMode::NN, a, b, twice, GemmAccumulate::Add,
         Precision::Bf16);
    for (std::size_t i = 0; i < 21; ++i) {
        for (std::size_t j = 0; j < 35; ++j) {
            EXPECT_NEAR(twice.at(i, j), 2.0f * once.at(i, j), 1e-4f)
                << i << "," << j;
        }
    }
}

TEST(Bf16Gemm, BlockSerialMatchesParallelPath)
{
    DenseMatrix a(47, 24);
    DenseMatrix b(24, 40);
    a.fillUniform(-1.0f, 1.0f, 51);
    b.fillUniform(-1.0f, 1.0f, 52);
    GemmPlan plan;
    plan.pack(GemmMode::NN, b, Precision::Bf16);
    EXPECT_EQ(plan.precision(), Precision::Bf16);
    EXPECT_EQ(plan.validateFor(24, 40), nullptr);

    DenseMatrix parallel(47, 40);
    gemm(GemmMode::NN, a, plan, parallel);
    DenseMatrix serial(47, 40);
    gemmBlockSerial(a.row(0), 47, a.rowStride(), plan, serial.row(0),
                    serial.rowStride(), 24);
    for (std::size_t i = 0; i < 47; ++i) {
        for (std::size_t j = 0; j < 40; ++j) {
            EXPECT_NEAR(serial.at(i, j), parallel.at(i, j), 1e-5f)
                << i << "," << j;
        }
    }
}

// ---------------------------------------------------------------------
// Aggregation and fused layers over bf16 features.
// ---------------------------------------------------------------------

/**
 * Gathering from bf16 storage must equal gathering fp32 features that
 * were themselves rounded through bf16: widening is exact and both
 * paths accumulate neighbors in the same order, so the match is
 * bit-identical.
 */
TEST(Bf16Aggregation, MatchesFp32OnRoundedInput)
{
    const CsrGraph g = testGraph();
    const AggregationSpec spec = gcnSpec(g);
    DenseMatrix features(g.numVertices(), 43);
    features.fillUniform(-2.0f, 2.0f, 61);

    Bf16Matrix packed(g.numVertices(), 43);
    packed.fromDense(features);
    DenseMatrix rounded(g.numVertices(), 43);
    packed.toDense(rounded);

    DenseMatrix ref(g.numVertices(), 43);
    aggregateBasic(g, rounded, ref, spec);
    DenseMatrix got(g.numVertices(), 43);
    aggregateBf16(g, packed, got, spec);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        for (std::size_t c = 0; c < 43; ++c)
            EXPECT_EQ(floatBits(got.at(v, c)), floatBits(ref.at(v, c)))
                << v << "," << c;
    }
}

TEST(Bf16Aggregation, MaxReduceAndProcessingOrder)
{
    const CsrGraph g = testGraph();
    AggregationSpec spec = maxSpec();
    DenseMatrix features(g.numVertices(), 24);
    features.fillUniform(-2.0f, 2.0f, 62);
    Bf16Matrix packed(g.numVertices(), 24);
    packed.fromDense(features);
    DenseMatrix rounded(g.numVertices(), 24);
    packed.toDense(rounded);

    DenseMatrix ref(g.numVertices(), 24);
    aggregateBasic(g, rounded, ref, spec);
    const ProcessingOrder order = localityOrder(g);
    DenseMatrix got(g.numVertices(), 24);
    aggregateBf16(g, packed, got, spec, order);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        for (std::size_t c = 0; c < 24; ++c)
            EXPECT_EQ(floatBits(got.at(v, c)), floatBits(ref.at(v, c)))
                << v << "," << c;
    }
}

TEST(Bf16FusedLayer, InferenceMatchesUnfusedComposition)
{
    const CsrGraph g = testGraph();
    const AggregationSpec spec = gcnSpec(g);
    const std::size_t fIn = 40;
    const std::size_t fOut = 24;
    DenseMatrix features(g.numVertices(), fIn);
    features.fillUniform(-1.0f, 1.0f, 71);
    Bf16Matrix packed(g.numVertices(), fIn);
    packed.fromDense(features);

    DenseMatrix weights(fIn, fOut);
    weights.fillUniform(-0.4f, 0.4f, 72);
    std::vector<Feature> bias(fOut, 0.05f);
    GemmPlan plan;
    plan.pack(GemmMode::NN, weights, Precision::Bf16);
    const UpdateOp update{&weights, bias, true, &plan, Precision::Bf16};

    // Unfused composition at the same precision.
    DenseMatrix agg(g.numVertices(), fIn);
    aggregateBf16(g, packed, agg, spec);
    DenseMatrix ref(g.numVertices(), fOut);
    gemm(GemmMode::NN, agg, plan, ref);
    addBias(ref, bias);
    reluForward(ref);

    Bf16Matrix outBf16(g.numVertices(), fOut);
    DenseMatrix out(g.numVertices(), fOut);
    fusedLayerInferenceBf16(g, packed, spec, update, out, {}, {},
                            &outBf16);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        for (std::size_t c = 0; c < fOut; ++c) {
            EXPECT_NEAR(out.at(v, c), ref.at(v, c),
                        1e-5f * std::max(1.0f, std::abs(ref.at(v, c))))
                << v << "," << c;
            // Write-side rounding happened while cache-resident; it
            // must equal rounding the final fp32 row.
            EXPECT_EQ(outBf16.row(v)[c], bf16FromFloat(out.at(v, c)))
                << v << "," << c;
        }
    }
}

TEST(Bf16FusedLayer, TrainingKeepsFp32AggForBackprop)
{
    const CsrGraph g = testGraph();
    const AggregationSpec spec = gcnSpec(g);
    DenseMatrix features(g.numVertices(), 32);
    features.fillUniform(-1.0f, 1.0f, 73);
    Bf16Matrix packed(g.numVertices(), 32);
    packed.fromDense(features);

    DenseMatrix weights(32, 16);
    weights.fillUniform(-0.4f, 0.4f, 74);
    std::vector<Feature> bias(16, 0.0f);
    GemmPlan plan;
    plan.pack(GemmMode::NN, weights, Precision::Bf16);
    const UpdateOp update{&weights, bias, true, &plan, Precision::Bf16};

    DenseMatrix refAgg(g.numVertices(), 32);
    aggregateBf16(g, packed, refAgg, spec);

    DenseMatrix aggOut(g.numVertices(), 32);
    DenseMatrix out(g.numVertices(), 16);
    fusedLayerTrainingBf16(g, packed, spec, update, aggOut, out);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        for (std::size_t c = 0; c < 32; ++c)
            EXPECT_EQ(floatBits(aggOut.at(v, c)),
                      floatBits(refAgg.at(v, c)))
                << v << "," << c;
    }
}

TEST(Bf16FusedLayer, BackwardMatchesUnfusedComposition)
{
    const CsrGraph g = testGraph();
    const CsrGraph t = g.transposed();
    const AggregationSpec spec = gcnSpec(g);
    const AggregationSpec tSpec = transposeSpec(g, spec, t);
    const std::size_t fIn = 24;
    const std::size_t fOut = 12;

    DenseMatrix weights(fIn, fOut);
    weights.fillUniform(-0.5f, 0.5f, 81);
    DenseMatrix dz(g.numVertices(), fOut);
    dz.fillUniform(-1.0f, 1.0f, 82);
    Bf16Matrix dzBf16(g.numVertices(), fOut);
    dzBf16.fromDense(dz);
    DenseMatrix dzRounded(g.numVertices(), fOut);
    dzBf16.toDense(dzRounded);
    GemmPlan planNT;
    planNT.pack(GemmMode::NT, weights, Precision::Bf16);

    // Unfused at the same precision: dAgg = Aggᵀ(dz) in fp32 from the
    // rounded dz, then the bf16 NT GEMM. (The fused kernel computes
    // (Aggᵀ dz)·Wᵀ — the commuted form; its aggregation sums the same
    // rounded values, its GEMM rounds the aggregated rows again at the
    // A pack, so match the composition exactly rather than fp32.)
    DenseMatrix aggT(g.numVertices(), fOut);
    aggregateBasic(t, dzRounded, aggT, tSpec);
    DenseMatrix ref(g.numVertices(), fIn);
    gemm(GemmMode::NT, aggT, planNT, ref);

    DenseMatrix got(g.numVertices(), fIn);
    fusedLayerBackwardBf16(t, dzBf16, tSpec, planNT, got);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        for (std::size_t c = 0; c < fIn; ++c) {
            EXPECT_NEAR(got.at(v, c), ref.at(v, c),
                        1e-5f * std::max(1.0f, std::abs(ref.at(v, c))))
                << v << "," << c;
        }
    }
}

// ---------------------------------------------------------------------
// Byte accounting: the 2x gather-traffic claim, measured.
// ---------------------------------------------------------------------

TEST(Bf16Traffic, GatherBytesHalveAtFullPrecisionWidths)
{
    const CsrGraph g = testGraph();
    const AggregationSpec spec = gcnSpec(g);
    const std::size_t f = 128; // multiple of both strides: exact halving
    DenseMatrix features(g.numVertices(), f);
    features.fillUniform(-1.0f, 1.0f, 91);
    Bf16Matrix packed(g.numVertices(), f);
    packed.fromDense(features);
    DenseMatrix out(g.numVertices(), f);

    obs::MetricsRegistry &registry = obs::MetricsRegistry::global();
    const bool wasEnabled = registry.enabled();
    registry.setEnabled(true);
    obs::Counter &bytes = registry.counter("agg.bytes_gathered");
    const std::uint64_t base = bytes.value();
    aggregateBasic(g, features, out, spec);
    const std::uint64_t fp32Bytes = bytes.value() - base;
    aggregateBf16(g, packed, out, spec);
    const std::uint64_t bf16Bytes = bytes.value() - base - fp32Bytes;
    registry.setEnabled(wasEnabled);

    ASSERT_GT(fp32Bytes, 0u);
    EXPECT_EQ(bf16Bytes * 2, fp32Bytes);
    // And the absolute scale is right: one padded row per self term
    // plus one per edge.
    const std::uint64_t rows = g.numVertices() + g.numEdges();
    EXPECT_EQ(fp32Bytes, rows * features.rowBytes());
    EXPECT_EQ(bf16Bytes, rows * packed.rowBytes());
}

TEST(Bf16Traffic, FusedGatherBytesHalveToo)
{
    const CsrGraph g = testGraph();
    const AggregationSpec spec = gcnSpec(g);
    const std::size_t f = 64;
    DenseMatrix features(g.numVertices(), f);
    features.fillUniform(-1.0f, 1.0f, 92);
    Bf16Matrix packed(g.numVertices(), f);
    packed.fromDense(features);
    DenseMatrix weights(f, 16);
    weights.fillUniform(-0.4f, 0.4f, 93);
    std::vector<Feature> bias(16, 0.0f);
    const UpdateOp fp32Update{&weights, bias, true};
    GemmPlan plan;
    plan.pack(GemmMode::NN, weights, Precision::Bf16);
    const UpdateOp bf16Update{&weights, bias, true, &plan,
                              Precision::Bf16};
    DenseMatrix out(g.numVertices(), 16);

    obs::MetricsRegistry &registry = obs::MetricsRegistry::global();
    const bool wasEnabled = registry.enabled();
    registry.setEnabled(true);
    obs::Counter &bytes = registry.counter("fused.bytes_gathered");
    const std::uint64_t base = bytes.value();
    fusedLayerInference(g, features, spec, fp32Update, out);
    const std::uint64_t fp32Bytes = bytes.value() - base;
    fusedLayerInferenceBf16(g, packed, spec, bf16Update, out);
    const std::uint64_t bf16Bytes = bytes.value() - base - fp32Bytes;
    registry.setEnabled(wasEnabled);

    ASSERT_GT(fp32Bytes, 0u);
    EXPECT_EQ(bf16Bytes * 2, fp32Bytes);
}

// ---------------------------------------------------------------------
// Model plumbing: the precision knob end to end.
// ---------------------------------------------------------------------

TEST(PrecisionConfig, NamesParseAndLabel)
{
    EXPECT_STREQ(precisionName(Precision::Fp32), "fp32");
    EXPECT_STREQ(precisionName(Precision::Bf16), "bf16");
    Precision p = Precision::Fp32;
    EXPECT_TRUE(parsePrecision("bf16", p));
    EXPECT_EQ(p, Precision::Bf16);
    EXPECT_TRUE(parsePrecision("fp32", p));
    EXPECT_EQ(p, Precision::Fp32);
    EXPECT_FALSE(parsePrecision("fp16", p));
    EXPECT_FALSE(parsePrecision("BF16", p)); // case-sensitive
    EXPECT_EQ(p, Precision::Fp32);           // untouched on failure

    TechniqueConfig tech = TechniqueConfig::combined();
    tech.precision = Precision::Bf16;
    EXPECT_EQ(tech.label(), "combined-bf16");
    EXPECT_EQ(TechniqueConfig::basic().label(), "basic");
}

TEST(PrecisionConfig, LayerPlanCacheIsPrecisionKeyed)
{
    GnnLayer layer(24, 16, true);
    layer.initWeights(3);
    const GemmPlan *fp32 = &layer.packedWeights(Precision::Fp32);
    EXPECT_EQ(fp32->precision(), Precision::Fp32);
    const GemmPlan *bf16 = &layer.packedWeights(Precision::Bf16);
    EXPECT_EQ(bf16->precision(), Precision::Bf16);
    // Each precision has its own slot: filling the bf16 one must not
    // repack (or move) the fp32 plan a concurrent reader may hold.
    EXPECT_NE(fp32, bf16);
    EXPECT_EQ(fp32->precision(), Precision::Fp32);
    EXPECT_EQ(&layer.packedWeights(Precision::Fp32), fp32);
    EXPECT_EQ(layer.packedWeightsTransposed(Precision::Bf16).precision(),
              Precision::Bf16);
    EXPECT_NE(&layer.packedWeightsTransposed(Precision::Fp32),
              &layer.packedWeightsTransposed(Precision::Bf16));
}

/** Relative Frobenius distance between two matrices. */
double
relativeFrobenius(const DenseMatrix &got, const DenseMatrix &ref)
{
    double num = 0.0;
    double den = 0.0;
    for (std::size_t r = 0; r < ref.rows(); ++r) {
        for (std::size_t c = 0; c < ref.cols(); ++c) {
            const double d = static_cast<double>(got.at(r, c)) -
                             static_cast<double>(ref.at(r, c));
            num += d * d;
            den += static_cast<double>(ref.at(r, c)) *
                   static_cast<double>(ref.at(r, c));
        }
    }
    return den == 0.0 ? std::sqrt(num) : std::sqrt(num / den);
}

/** (kind, fusion) */
using PrecisionSweep = std::tuple<GnnKind, bool>;

class Bf16GradientParity
    : public ::testing::TestWithParam<PrecisionSweep>
{
};

/**
 * Gradient parity fp32 vs bf16 across model kinds and kernel paths.
 * Tolerances are deliberately relaxed relative to the fp32-only parity
 * sweeps: bf16 rounds activations and weights to 8 mantissa bits
 * (relative step 2^-8 ≈ 0.4%), and two layers of aggregation + GEMM
 * compound it, so gradients are compared by relative Frobenius
 * distance rather than 1e-4 elementwise. Observed: GCN and GIN track
 * within 3%; GraphSAGE's layer-0 gradients see partial cancellation
 * across its mean-aggregated neighborhoods and land near 7%. The gate
 * is 10% — pinning accuracy, not equality; that gap is the documented
 * cost of the 2x traffic saving.
 */
TEST_P(Bf16GradientParity, GradientsTrackFp32Within10Percent)
{
    const auto [kind, fusion] = GetParam();
    const CsrGraph g = testGraph();

    GnnModelConfig config;
    config.kind = kind;
    config.featureWidths = {12, 24, 5};
    config.dropoutRate = 0.0; // isolate precision effects
    GnnModel fp32Model(g, config);
    GnnModel bf16Model(g, config);

    DenseMatrix features(g.numVertices(), 12);
    features.fillUniform(-1.0f, 1.0f, 10);
    std::vector<std::int32_t> labels(g.numVertices());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        labels[v] = static_cast<std::int32_t>(v % 5);

    TechniqueConfig fp32Tech;
    fp32Tech.fusion = fusion;
    TechniqueConfig bf16Tech = fp32Tech;
    bf16Tech.precision = Precision::Bf16;

    const auto backward = [&](GnnModel &model,
                              const TechniqueConfig &tech) {
        const DenseMatrix &logits = model.trainForward(features, tech);
        DenseMatrix lossGrad(logits.rows(), logits.cols());
        softmaxCrossEntropy(logits, labels, lossGrad);
        model.trainBackward(lossGrad, tech);
    };
    backward(fp32Model, fp32Tech);
    backward(bf16Model, bf16Tech);

    for (std::size_t k = 0; k < fp32Model.numLayers(); ++k) {
        const double wErr =
            relativeFrobenius(bf16Model.layer(k).weightGrad(),
                              fp32Model.layer(k).weightGrad());
        EXPECT_LT(wErr, 0.10) << "weightGrad layer " << k;

        const std::span<const Feature> refB =
            fp32Model.layer(k).biasGrad();
        const std::span<const Feature> gotB =
            bf16Model.layer(k).biasGrad();
        double num = 0.0;
        double den = 0.0;
        for (std::size_t c = 0; c < refB.size(); ++c) {
            num += (gotB[c] - refB[c]) * (gotB[c] - refB[c]);
            den += refB[c] * refB[c];
        }
        EXPECT_LT(den == 0.0 ? std::sqrt(num) : std::sqrt(num / den),
                  0.10)
            << "biasGrad layer " << k;
    }
}

std::string
precisionSweepName(const ::testing::TestParamInfo<PrecisionSweep> &info)
{
    const auto [kind, fusion] = info.param;
    return gnnKindName(kind) + (fusion ? "_fused" : "_unfused");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Bf16GradientParity,
    ::testing::Combine(::testing::Values(GnnKind::Gcn, GnnKind::Sage,
                                         GnnKind::Gin),
                       ::testing::Bool()),
    precisionSweepName);

TEST(Bf16Model, InferenceTracksFp32AcrossTechniques)
{
    const CsrGraph g = testGraph();
    GnnModelConfig config;
    config.featureWidths = {16, 32, 6};
    GnnModel model(g, config);
    DenseMatrix features(g.numVertices(), 16);
    features.fillUniform(-1.0f, 1.0f, 15);

    const DenseMatrix fp32Logits =
        model.inference(features, TechniqueConfig::basic());
    for (TechniqueConfig tech :
         {TechniqueConfig::basic(), TechniqueConfig::withFusion(),
          TechniqueConfig::combined()}) {
        tech.precision = Precision::Bf16;
        const DenseMatrix &logits = model.inference(features, tech);
        EXPECT_LT(relativeFrobenius(logits, fp32Logits), 0.02)
            << tech.label();
    }
    // And the default stays bit-compatible with itself after the bf16
    // runs (no state leaks from the precision-keyed plan cache).
    const DenseMatrix &again =
        model.inference(features, TechniqueConfig::basic());
    for (std::size_t r = 0; r < again.rows(); ++r) {
        for (std::size_t c = 0; c < again.cols(); ++c)
            EXPECT_EQ(floatBits(again.at(r, c)),
                      floatBits(fp32Logits.at(r, c)));
    }
}

} // namespace
} // namespace graphite
