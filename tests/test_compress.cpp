/**
 * @file
 * Tests of the mask-based feature compression (paper Section 4.3):
 * AVX-512 and scalar paths pinned against each other, round-trip
 * identity, fused expand-accumulate, and traffic accounting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/aligned_buffer.h"
#include "common/rng.h"
#include "compress/compressed_matrix.h"
#include "compress/mask_compress.h"
#include "tensor/dense_matrix.h"

namespace graphite {
namespace {

std::vector<Feature>
sparseVector(std::size_t n, double sparsity, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Feature> v(n);
    for (auto &x : v) {
        x = rng.uniform() < sparsity
                ? 0.0f : 1.0f + rng.uniformFloat();
    }
    return v;
}

class CompressAtSparsity : public testing::TestWithParam<double>
{
};

TEST_P(CompressAtSparsity, RoundTripRestoresExactly)
{
    const std::size_t n = 256;
    const auto input = sparseVector(n, GetParam(), 1);
    std::vector<Feature> packed(n);
    std::vector<std::uint16_t> mask(maskWordsFor(n));
    const std::size_t nnz =
        compressRow(input.data(), n, packed.data(), mask.data());
    std::vector<Feature> restored(n, -1.0f);
    const std::size_t consumed =
        decompressRow(packed.data(), mask.data(), n, restored.data());
    EXPECT_EQ(consumed, nnz);
    EXPECT_EQ(restored, input);
}

TEST_P(CompressAtSparsity, VectorAndScalarPathsAgree)
{
    const std::size_t n = 128;
    const auto input = sparseVector(n, GetParam(), 2);
    std::vector<Feature> packedA(n);
    std::vector<Feature> packedB(n);
    std::vector<std::uint16_t> maskA(maskWordsFor(n));
    std::vector<std::uint16_t> maskB(maskWordsFor(n));
    const std::size_t nnzA =
        compressRow(input.data(), n, packedA.data(), maskA.data());
    const std::size_t nnzB =
        compressRowScalar(input.data(), n, packedB.data(), maskB.data());
    ASSERT_EQ(nnzA, nnzB);
    EXPECT_EQ(maskA, maskB);
    for (std::size_t i = 0; i < nnzA; ++i)
        EXPECT_EQ(packedA[i], packedB[i]);
}

TEST_P(CompressAtSparsity, AccumulateExpandedMatchesScalar)
{
    const std::size_t n = 192;
    const auto input = sparseVector(n, GetParam(), 3);
    std::vector<Feature> packed(n);
    std::vector<std::uint16_t> mask(maskWordsFor(n));
    compressRow(input.data(), n, packed.data(), mask.data());

    std::vector<Feature> accA(n, 1.0f);
    std::vector<Feature> accB(n, 1.0f);
    const Feature factor = 0.75f;
    const std::size_t usedA = accumulateExpanded(
        packed.data(), mask.data(), n, factor, accA.data());
    const std::size_t usedB = accumulateExpandedScalar(
        packed.data(), mask.data(), n, factor, accB.data());
    EXPECT_EQ(usedA, usedB);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(accA[i], accB[i], 1e-6);
    // And against the direct dense math.
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(accA[i], 1.0f + factor * input[i], 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sparsities, CompressAtSparsity,
                         testing::Values(0.0, 0.1, 0.3, 0.5, 0.7, 0.9,
                                         1.0));

TEST(MaskCompress, MaskPopcountMatchesNnz)
{
    const std::size_t n = 64;
    const auto input = sparseVector(n, 0.5, 4);
    std::vector<Feature> packed(n);
    std::vector<std::uint16_t> mask(maskWordsFor(n));
    const std::size_t nnz =
        compressRow(input.data(), n, packed.data(), mask.data());
    EXPECT_EQ(maskPopcount(mask.data(), mask.size()), nnz);
}

TEST(MaskCompress, AllZeroVectorPacksToNothing)
{
    const std::size_t n = 32;
    std::vector<Feature> input(n, 0.0f);
    std::vector<Feature> packed(n);
    std::vector<std::uint16_t> mask(maskWordsFor(n));
    EXPECT_EQ(compressRow(input.data(), n, packed.data(), mask.data()),
              0u);
    for (std::uint16_t word : mask)
        EXPECT_EQ(word, 0u);
}

TEST(MaskCompress, DenseVectorPacksToItself)
{
    const std::size_t n = 48;
    auto input = sparseVector(n, 0.0, 5);
    std::vector<Feature> packed(n);
    std::vector<std::uint16_t> mask(maskWordsFor(n));
    EXPECT_EQ(compressRow(input.data(), n, packed.data(), mask.data()), n);
    EXPECT_EQ(packed, input);
}

TEST(CompressedMatrix, CompressDecompressWholeMatrix)
{
    DenseMatrix dense(100, 200);
    dense.fillUniform(0.5f, 1.5f, 6);
    dense.sparsify(0.6, 7);
    CompressedMatrix packed(100, 200);
    packed.compressFrom(dense);
    DenseMatrix restored(100, 200);
    packed.decompressTo(restored);
    EXPECT_DOUBLE_EQ(dense.maxAbsDiff(restored), 0.0);
}

TEST(CompressedMatrix, NnzPerRowIsTracked)
{
    DenseMatrix dense(4, 32);
    dense.at(1, 0) = 1.0f;
    dense.at(1, 31) = 2.0f;
    dense.at(3, 5) = 3.0f;
    CompressedMatrix packed(4, 32);
    packed.compressFrom(dense);
    EXPECT_EQ(packed.nnz(0), 0u);
    EXPECT_EQ(packed.nnz(1), 2u);
    EXPECT_EQ(packed.nnz(2), 0u);
    EXPECT_EQ(packed.nnz(3), 1u);
}

TEST(CompressedMatrix, AccumulateRowMatchesDenseMath)
{
    DenseMatrix dense(8, 64);
    dense.fillUniform(-1.0f, 1.0f, 8);
    dense.sparsify(0.4, 9);
    CompressedMatrix packed(8, 64);
    packed.compressFrom(dense);
    AlignedBuffer<Feature> acc(dense.rowStride());
    packed.accumulateRow(5, 2.0f, acc.data());
    for (std::size_t c = 0; c < 64; ++c)
        EXPECT_NEAR(acc[c], 2.0f * dense.at(5, c), 1e-6);
}

TEST(CompressedMatrix, TrafficShrinksWithSparsity)
{
    DenseMatrix dense(256, 256);
    dense.fillUniform(0.5f, 1.5f, 10);
    dense.sparsify(0.5, 11);
    CompressedMatrix packed(256, 256);
    packed.compressFrom(dense);
    const auto compressedBytes = packed.compressedTrafficBytes();
    const auto denseBytes = packed.denseTrafficBytes();
    // ~50% value traffic + 3.125% mask overhead (paper Section 4.3).
    EXPECT_LT(compressedBytes, denseBytes * 0.58);
    EXPECT_GT(compressedBytes, denseBytes * 0.45);
}

TEST(CompressedMatrix, MaskOverheadIsOneBitPerElement)
{
    CompressedMatrix packed(10, 256);
    // 256 elements -> 16 mask words -> 32 bytes = 256 bits.
    EXPECT_EQ(packed.maskWordsPerRow(), 16u);
}

TEST(MaskCompress, ReportsSimdAvailability)
{
    // Informational: on the CI host this should be the AVX-512 path,
    // but the scalar fallback is equally valid.
    (void)compressionUsesAvx512();
    SUCCEED();
}

} // namespace
} // namespace graphite
