/**
 * @file
 * Tests of the library extensions beyond the paper's headline path:
 * max-reduction aggregation, the Adam optimizer, model checkpointing,
 * the sampled mini-batch trainer, and the BFS processing order.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "dma/pipelined_runner.h"
#include "gnn/gat_layer.h"
#include "gnn/minibatch_trainer.h"
#include "gnn/optimizer.h"
#include "gnn/serialization.h"
#include "gnn/trainer.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "kernels/fused_layer.h"
#include "tensor/row_ops.h"

namespace graphite {
namespace {

TEST(MaxAggregation, MatchesReferenceOnRandomGraph)
{
    CsrGraph g = generateErdosRenyi(300, 2400, false, 201);
    DenseMatrix h(g.numVertices(), 128);
    h.fillUniform(-2.0f, 2.0f, 202);
    AggregationSpec spec = maxSpec();
    DenseMatrix fast(g.numVertices(), 128);
    DenseMatrix expected(g.numVertices(), 128);
    aggregateBasic(g, h, fast, spec);
    aggregateReference(g, h, expected, spec);
    EXPECT_DOUBLE_EQ(fast.maxAbsDiff(expected), 0.0);
}

TEST(MaxAggregation, ComputesElementwiseNeighborhoodMax)
{
    GraphBuilder builder(3);
    builder.addEdge(0, 1);
    builder.addEdge(0, 2);
    CsrGraph g = builder.build();
    DenseMatrix h(3, 16);
    h.at(0, 0) = -1.0f;
    h.at(1, 0) = 5.0f;
    h.at(2, 0) = 3.0f;
    h.at(0, 1) = 7.0f;
    DenseMatrix out(3, 16);
    aggregateBasic(g, h, out, maxSpec());
    EXPECT_FLOAT_EQ(out.at(0, 0), 5.0f); // max(-1, 5, 3)
    EXPECT_FLOAT_EQ(out.at(0, 1), 7.0f); // self dominates
}

TEST(MaxAggregation, WorksThroughFusedLayer)
{
    CsrGraph g = generateBarabasiAlbert(200, 4, 203);
    DenseMatrix h(g.numVertices(), 64);
    h.fillUniform(-1.0f, 1.0f, 204);
    DenseMatrix weights(64, 32);
    weights.fillUniform(-0.2f, 0.2f, 205);
    std::vector<Feature> bias(32, 0.0f);
    const UpdateOp update{&weights, bias, true};
    AggregationSpec spec = maxSpec();

    DenseMatrix refAgg(g.numVertices(), 64);
    DenseMatrix refOut(g.numVertices(), 32);
    unfusedLayer(g, h, spec, update, refAgg, refOut);

    DenseMatrix agg(g.numVertices(), 64);
    DenseMatrix out(g.numVertices(), 32);
    fusedLayerTraining(g, h, spec, update, agg, out);
    EXPECT_LT(out.maxAbsDiff(refOut), 1e-4);
}

TEST(MaxAggregation, WorksThroughDmaPipeline)
{
    CsrGraph g = generateErdosRenyi(150, 900, false, 206);
    DenseMatrix h(g.numVertices(), 48);
    h.fillUniform(-1.0f, 1.0f, 207);
    AggregationSpec spec = maxSpec();
    DenseMatrix expected(g.numVertices(), 48);
    aggregateReference(g, h, expected, spec);
    DenseMatrix viaDma(g.numVertices(), 48);
    dma::dmaAggregate(g, h, spec, viaDma);
    EXPECT_LT(expected.maxAbsDiff(viaDma), 1e-5);
}

TEST(Bf16, ConversionRoundTripWithinHalfUlp)
{
    DenseMatrix dense(50, 96);
    dense.fillUniform(-10.0f, 10.0f, 230);
    Bf16Matrix packed(50, 96);
    packed.fromDense(dense);
    DenseMatrix restored(50, 96);
    packed.toDense(restored);
    for (std::size_t r = 0; r < 50; ++r) {
        for (std::size_t c = 0; c < 96; ++c) {
            const float a = dense.at(r, c);
            const float b = restored.at(r, c);
            // bf16 keeps 8 mantissa bits: relative error < 2^-8.
            EXPECT_NEAR(b, a, std::abs(a) / 256.0f + 1e-30f);
        }
    }
}

TEST(Bf16, ExactValuesSurviveConversion)
{
    DenseMatrix dense(1, 16);
    dense.at(0, 0) = 1.0f;
    dense.at(0, 1) = -2.5f;
    dense.at(0, 2) = 0.0f;
    dense.at(0, 3) = 256.0f;
    Bf16Matrix packed(1, 16);
    packed.fromDense(dense);
    DenseMatrix restored(1, 16);
    packed.toDense(restored);
    EXPECT_EQ(restored.at(0, 0), 1.0f);
    EXPECT_EQ(restored.at(0, 1), -2.5f);
    EXPECT_EQ(restored.at(0, 2), 0.0f);
    EXPECT_EQ(restored.at(0, 3), 256.0f);
}

TEST(Bf16, AggregationTracksFp32WithinPrecision)
{
    CsrGraph g = generateErdosRenyi(300, 2400, false, 231);
    DenseMatrix h(g.numVertices(), 128);
    h.fillUniform(-1.0f, 1.0f, 232);
    Bf16Matrix packed(g.numVertices(), 128);
    packed.fromDense(h);
    AggregationSpec spec = gcnSpec(g);

    DenseMatrix full(g.numVertices(), 128);
    DenseMatrix half(g.numVertices(), 128);
    aggregateBasic(g, h, full, spec);
    aggregateBf16(g, packed, half, spec);
    // Each input carries <2^-8 relative error; the normalised sums
    // stay well within 1% for unit-scale features.
    EXPECT_LT(full.maxAbsDiff(half), 0.02);
    EXPECT_GT(full.maxAbsDiff(half), 0.0); // genuinely lossy
}

TEST(Bf16, TrafficIsHalfOfFp32)
{
    Bf16Matrix packed(1024, 256);
    DenseMatrix dense(1024, 256);
    EXPECT_EQ(packed.trafficBytes() * 2, dense.allocatedBytes());
}

TEST(Bf16, MaxReductionAggregationsWork)
{
    CsrGraph g = generateRing(64, 1);
    DenseMatrix h(g.numVertices(), 32);
    h.fillUniform(-4.0f, 4.0f, 233);
    Bf16Matrix packed(g.numVertices(), 32);
    packed.fromDense(h);
    // Max over bf16-rounded inputs == bf16-rounding of inputs then max:
    // compare against fp32 aggregation of the *restored* matrix.
    DenseMatrix restored(g.numVertices(), 32);
    packed.toDense(restored);
    AggregationSpec spec = maxSpec();
    DenseMatrix expected(g.numVertices(), 32);
    DenseMatrix actual(g.numVertices(), 32);
    aggregateReference(g, restored, expected, spec);
    aggregateBf16(g, packed, actual, spec);
    EXPECT_LT(expected.maxAbsDiff(actual), 1e-6);
}

TEST(Gin, SpecSumsNeighborsWithWeightedSelf)
{
    GraphBuilder builder(3);
    builder.addEdge(0, 1);
    builder.addEdge(0, 2);
    CsrGraph g = builder.build();
    AggregationSpec spec = ginSpec(g, 0.5f);
    DenseMatrix h(3, 16);
    h.at(0, 0) = 2.0f;
    h.at(1, 0) = 3.0f;
    h.at(2, 0) = 4.0f;
    DenseMatrix out(3, 16);
    aggregateBasic(g, h, out, spec);
    // (1 + 0.5) * 2 + 3 + 4 = 10.
    EXPECT_FLOAT_EQ(out.at(0, 0), 10.0f);
}

TEST(Gin, ModelTrainsEndToEnd)
{
    CsrGraph g = generateBarabasiAlbert(300, 4, 234);
    SyntheticTask task = makeSyntheticTask(g, 4, 16, 0.3, 235);
    GnnModelConfig config;
    config.kind = GnnKind::Gin;
    config.featureWidths = {16, 32, 4};
    config.dropoutRate = 0.1;
    GnnModel model(g, config);
    TrainerConfig tc;
    tc.epochs = 8;
    tc.learningRate = 0.05f; // GIN's unnormalised sums need a small lr
    Trainer trainer(model, task.features, task.labels, tc);
    auto history = trainer.train();
    EXPECT_LT(history.back().loss, history.front().loss);
}

TEST(Adam, ConvergesFasterThanItStarts)
{
    CsrGraph g = generateBarabasiAlbert(250, 4, 208);
    SyntheticTask task = makeSyntheticTask(g, 4, 16, 0.3, 209);
    GnnModelConfig config;
    config.featureWidths = {16, 32, 4};
    config.dropoutRate = 0.0;
    GnnModel model(g, config);
    AdamConfig adamConfig;
    adamConfig.learningRate = 2e-2f;
    AdamOptimizer adam(model, adamConfig);

    TechniqueConfig tech;
    double firstLoss = 0.0;
    double lastLoss = 0.0;
    for (int epoch = 0; epoch < 20; ++epoch) {
        const DenseMatrix &logits =
            model.trainForward(task.features, tech);
        DenseMatrix grad(logits.rows(), logits.cols());
        const double loss =
            softmaxCrossEntropy(logits, task.labels, grad);
        if (epoch == 0)
            firstLoss = loss;
        lastLoss = loss;
        model.trainBackward(grad, tech);
        adam.step();
    }
    EXPECT_EQ(adam.steps(), 20u);
    EXPECT_LT(lastLoss, firstLoss * 0.8);
}

TEST(Adam, WeightDecayShrinksWeights)
{
    CsrGraph g = generateRing(32);
    GnnModelConfig config;
    config.featureWidths = {8, 4};
    config.dropoutRate = 0.0;
    GnnModel model(g, config);
    // Zero gradients + weight decay: weights must shrink toward zero.
    AdamConfig adamConfig;
    adamConfig.learningRate = 0.1f;
    adamConfig.weightDecay = 0.5f;
    AdamOptimizer adam(model, adamConfig);
    model.layer(0).weights().fillUniform(1.0f, 1.0f, 0); // all ones
    // weightGrad is zero-initialised (no backward ran).
    double before = 0.0;
    for (std::size_t c = 0; c < 4; ++c)
        before += model.layer(0).weights().at(0, c);
    adam.step();
    double after = 0.0;
    for (std::size_t c = 0; c < 4; ++c)
        after += model.layer(0).weights().at(0, c);
    EXPECT_LT(after, before);
}

TEST(Serialization, RoundTripRestoresParametersExactly)
{
    CsrGraph g = generateErdosRenyi(100, 600, false, 210);
    GnnModelConfig config;
    config.featureWidths = {12, 24, 5};
    config.seed = 77;
    GnnModel model(g, config);
    DenseMatrix features(g.numVertices(), 12);
    features.fillUniform(-1.0f, 1.0f, 211);
    const DenseMatrix before =
        model.inference(features, TechniqueConfig::basic());

    const std::string path = testing::TempDir() + "graphite_ckpt.grph";
    saveModel(model, path);
    EXPECT_TRUE(isCheckpointFile(path));

    GnnModelConfig config2 = config;
    config2.seed = 12345; // different init, must be overwritten
    GnnModel restored(g, config2);
    loadModel(restored, path);
    const DenseMatrix after =
        restored.inference(features, TechniqueConfig::basic());
    EXPECT_DOUBLE_EQ(before.maxAbsDiff(after), 0.0);
    std::remove(path.c_str());
}

TEST(Serialization, RejectsNonCheckpointFiles)
{
    const std::string path = testing::TempDir() + "not_a_ckpt.bin";
    FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("garbage", f);
    std::fclose(f);
    EXPECT_FALSE(isCheckpointFile(path));
    std::remove(path.c_str());
}

TEST(MiniBatchTrainer, LossDecreasesOverEpochs)
{
    CsrGraph g = generateBarabasiAlbert(600, 5, 212);
    SyntheticTask task = makeSyntheticTask(g, 4, 16, 0.3, 213);
    MiniBatchConfig config;
    config.batchSize = 128;
    config.fanouts = {6, 6};
    config.learningRate = 0.1f;
    MiniBatchTrainer trainer(g, task.features, task.labels,
                             {16, 32, 4}, GnnKind::Sage, config);
    auto first = trainer.trainEpoch();
    MiniBatchEpochStats last{};
    for (int epoch = 0; epoch < 6; ++epoch)
        last = trainer.trainEpoch();
    EXPECT_LT(last.loss, first.loss);
    EXPECT_GT(first.samplingSeconds, 0.0);
    EXPECT_GT(first.layerSeconds, 0.0);
}

TEST(MiniBatchTrainer, EvaluateLossIsFinite)
{
    CsrGraph g = generateErdosRenyi(300, 3000, false, 214);
    SyntheticTask task = makeSyntheticTask(g, 3, 8, 0.3, 215);
    MiniBatchConfig config;
    config.batchSize = 100;
    config.fanouts = {5};
    MiniBatchTrainer trainer(g, task.features, task.labels, {8, 3},
                             GnnKind::Sage, config);
    const double loss = trainer.evaluateLoss();
    EXPECT_GT(loss, 0.0);
    EXPECT_LT(loss, 50.0);
}

TEST(Gat, AttentionFactorsFormADistribution)
{
    CsrGraph g = generateErdosRenyi(200, 1600, false, 240);
    GatLayer layer(24, 16);
    layer.initWeights(241);
    DenseMatrix h(g.numVertices(), 24);
    h.fillUniform(-1.0f, 1.0f, 242);
    DenseMatrix z = layer.project(h);
    AggregationSpec spec = layer.attentionSpec(g, z);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        double sum = spec.selfFactors[v];
        for (EdgeId e = g.rowBegin(v); e < g.rowEnd(v); ++e) {
            EXPECT_GE(spec.edgeFactors[e], 0.0f);
            sum += spec.edgeFactors[e];
        }
        EXPECT_NEAR(sum, 1.0, 1e-5) << "vertex " << v;
    }
}

TEST(Gat, KernelForwardMatchesNaiveReference)
{
    CsrGraph g = generateBarabasiAlbert(150, 4, 243);
    GatLayer layer(16, 12);
    layer.initWeights(244);
    DenseMatrix h(g.numVertices(), 16);
    h.fillUniform(-1.0f, 1.0f, 245);
    DenseMatrix fast = layer.forward(g, h);
    DenseMatrix expected = layer.forwardReference(g, h);
    EXPECT_LT(fast.maxAbsDiff(expected), 1e-4);
}

TEST(Gat, AttentionFactorsFlowThroughDmaFactorArray)
{
    // The whole point of the FACTOR field (paper Figure 8): the host
    // computes data-dependent ψ factors — here, GAT attention — and the
    // engine applies them during the gather.
    CsrGraph g = generateErdosRenyi(120, 900, false, 246);
    GatLayer layer(16, 16);
    layer.initWeights(247);
    DenseMatrix h(g.numVertices(), 16);
    h.fillUniform(-1.0f, 1.0f, 248);
    DenseMatrix z = layer.project(h);
    AggregationSpec attention = layer.attentionSpec(g, z);

    DenseMatrix viaCore(g.numVertices(), 16);
    DenseMatrix viaDma(g.numVertices(), 16);
    aggregateBasic(g, z, viaCore, attention);
    dma::dmaAggregate(g, z, attention, viaDma);
    EXPECT_LT(viaCore.maxAbsDiff(viaDma), 1e-5);
}

TEST(Gat, IsolatedVertexAttendsOnlyToItself)
{
    GraphBuilder builder(2);
    builder.addEdge(0, 1); // vertex 1 has no out-edges
    CsrGraph g = builder.build();
    GatLayer layer(8, 8);
    layer.initWeights(249);
    DenseMatrix h(2, 8);
    h.fillUniform(-1.0f, 1.0f, 250);
    DenseMatrix z = layer.project(h);
    AggregationSpec spec = layer.attentionSpec(g, z);
    EXPECT_NEAR(spec.selfFactors[1], 1.0f, 1e-6);
}

TEST(MaskedTraining, SplitMasksAreDisjointAndSized)
{
    auto [train, eval] = makeSplitMasks(10000, 0.6, 0.2, 31);
    std::size_t trainCount = 0;
    std::size_t evalCount = 0;
    for (std::size_t v = 0; v < train.size(); ++v) {
        trainCount += train[v];
        evalCount += eval[v];
        EXPECT_FALSE(train[v] && eval[v]) << "overlap at " << v;
    }
    EXPECT_NEAR(trainCount / 10000.0, 0.6, 0.03);
    EXPECT_NEAR(evalCount / 10000.0, 0.2, 0.03);
}

TEST(MaskedTraining, UnmaskedRowsGetZeroGradient)
{
    DenseMatrix logits(6, 3);
    logits.fillUniform(-1.0f, 1.0f, 32);
    std::vector<std::int32_t> labels = {0, 1, 2, 0, 1, 2};
    std::vector<std::uint8_t> mask = {1, 0, 1, 0, 0, 1};
    DenseMatrix grad(6, 3);
    const double loss =
        softmaxCrossEntropyMasked(logits, labels, mask, grad);
    EXPECT_GT(loss, 0.0);
    for (std::size_t r = 0; r < 6; ++r) {
        double rowSum = 0.0;
        for (std::size_t c = 0; c < 3; ++c)
            rowSum += std::abs(grad.at(r, c));
        if (mask[r])
            EXPECT_GT(rowSum, 0.0) << "masked row " << r;
        else
            EXPECT_EQ(rowSum, 0.0) << "unmasked row " << r;
    }
}

TEST(MaskedTraining, GeneralisesToHeldOutVertices)
{
    CsrGraph g = generateBarabasiAlbert(500, 4, 33);
    SyntheticTask task = makeSyntheticTask(g, 4, 16, 0.25, 34);
    auto [train, eval] = makeSplitMasks(g.numVertices(), 0.5, 0.3, 35);

    GnnModelConfig config;
    config.featureWidths = {16, 32, 4};
    config.dropoutRate = 0.1;
    GnnModel model(g, config);
    TrainerConfig tc;
    tc.epochs = 12;
    tc.learningRate = 0.3f;
    tc.trainMask = train;
    tc.evalMask = eval;
    Trainer trainer(model, task.features, task.labels, tc);
    auto history = trainer.train();
    EXPECT_LT(history.back().loss, history.front().loss);
    // Held-out accuracy must clear the 25% random baseline: the model
    // generalises through the graph structure.
    EXPECT_GT(trainer.evaluate(), 0.35);
}

TEST(BfsOrder, IsPermutationAndLocal)
{
    // A large-diameter graph (ring with skip edges): BFS visits
    // topological neighborhoods consecutively, so reuse distances are
    // tiny; a random order scatters them. (On small-diameter hub
    // graphs the BFS frontier explodes and the property vanishes —
    // which is exactly why the paper needed Algorithm 3.)
    CsrGraph g = generateRing(2048, 2);
    ProcessingOrder order = bfsOrder(g);
    EXPECT_TRUE(isPermutation(g, order));
    const double bfs = averageReuseDistance(g, order, 2048);
    const double rnd =
        averageReuseDistance(g, randomOrder(g, 5), 2048);
    EXPECT_LT(bfs * 4, rnd);
}

TEST(BfsOrder, CoversDisconnectedComponents)
{
    // Two disjoint rings.
    GraphBuilder builder(20);
    for (VertexId v = 0; v < 10; ++v)
        builder.addUndirectedEdge(v, (v + 1) % 10);
    for (VertexId v = 10; v < 20; ++v)
        builder.addUndirectedEdge(v, 10 + ((v - 10 + 1) % 10));
    CsrGraph g = builder.build();
    EXPECT_TRUE(isPermutation(g, bfsOrder(g)));
}

} // namespace
} // namespace graphite
