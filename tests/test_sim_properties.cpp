/**
 * @file
 * Property tests of the whole-network simulation harness: directional
 * invariants every calibration of the cost model must preserve, run on
 * small graphs so the suite stays fast.
 */

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/reorder.h"
#include "sim/machine.h"
#include "sim/workloads.h"

namespace graphite::sim {
namespace {

class NetworkSim : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        CommunityParams params;
        params.numVertices = 1 << 13;
        params.communitySize = 64;
        params.intraDegree = 10;
        params.interDegree = 2;
        graph_ = generateCommunityGraph(params);
        transposed_ = graph_.transposed();
        locality_ = localityOrder(graph_);
    }

    NetworkWorkload
    network(LayerImpl impl) const
    {
        NetworkWorkload net;
        net.graph = &graph_;
        net.order = &locality_;
        net.transposedOrder = &locality_; // undirected: same graph
        net.fInput = 64;
        net.fHidden = 128;
        net.numLayers = 2;
        net.impl = impl;
        return net;
    }

    Cycles
    inferCycles(const NetworkWorkload &net) const
    {
        Machine machine(paperMachine(8));
        return simulateInference(machine, net).totalCycles;
    }

    Cycles
    trainCycles(const NetworkWorkload &net) const
    {
        Machine machine(paperMachine(8));
        return simulateTraining(machine, net, transposed_).totalCycles;
    }

    CsrGraph graph_;
    CsrGraph transposed_;
    ProcessingOrder locality_;
};

TEST_F(NetworkSim, TrainingCostsMoreThanInference)
{
    // Training adds the backward GEMMs and the transposed aggregation.
    const NetworkWorkload net = network(LayerImpl::Basic);
    EXPECT_GT(trainCycles(net), inferCycles(net));
}

TEST_F(NetworkSim, CompressionSpeedupGrowsWithSparsity)
{
    NetworkWorkload net = network(LayerImpl::Basic);
    net.compression = true;
    net.sparsity = 0.3;
    const Cycles at30 = inferCycles(net);
    net.sparsity = 0.9;
    const Cycles at90 = inferCycles(net);
    EXPECT_LT(at90, at30);
}

TEST_F(NetworkSim, LocalityOrderHelpsOnClusteredGraph)
{
    NetworkWorkload net = network(LayerImpl::Fused);
    const Cycles identity = trainCycles(net);
    net.locality = true;
    const Cycles ordered = trainCycles(net);
    EXPECT_LT(ordered, identity);
}

TEST_F(NetworkSim, MoreLayersCostMore)
{
    NetworkWorkload net = network(LayerImpl::Basic);
    const Cycles two = inferCycles(net);
    net.numLayers = 4;
    const Cycles four = inferCycles(net);
    EXPECT_GT(four, two * 3 / 2);
}

TEST_F(NetworkSim, DmaTrackingEntriesNeverHurt)
{
    NetworkWorkload net = network(LayerImpl::DmaFused);
    net.dma.trackingEntries = 8;
    const Cycles small = inferCycles(net);
    net.dma.trackingEntries = 64;
    const Cycles large = inferCycles(net);
    EXPECT_LE(large, small * 101 / 100);
}

TEST_F(NetworkSim, WiderFeaturesCostMore)
{
    NetworkWorkload net = network(LayerImpl::Basic);
    const Cycles narrow = inferCycles(net);
    net.fHidden = 256;
    const Cycles wide = inferCycles(net);
    EXPECT_GT(wide, narrow);
}

TEST_F(NetworkSim, CacheShrinkIncreasesCycles)
{
    const NetworkWorkload net = network(LayerImpl::Basic);
    Machine big(paperMachine(1));
    Machine small(paperMachine(32));
    const Cycles bigCache =
        simulateInference(big, net).totalCycles;
    const Cycles smallCache =
        simulateInference(small, net).totalCycles;
    EXPECT_GT(smallCache, bigCache);
}

TEST_F(NetworkSim, BandwidthScalesRuntime)
{
    // Halving DRAM bandwidth must slow a memory-bound run noticeably.
    const NetworkWorkload net = network(LayerImpl::Basic);
    MachineParams fast = paperMachine(8);
    MachineParams slow = paperMachine(8);
    slow.dramGBps = fast.dramGBps / 4.0;
    Machine fastMachine(fast);
    Machine slowMachine(slow);
    const Cycles fastCycles =
        simulateInference(fastMachine, net).totalCycles;
    const Cycles slowCycles =
        simulateInference(slowMachine, net).totalCycles;
    EXPECT_GT(slowCycles, fastCycles * 5 / 4);
}

TEST_F(NetworkSim, DmaGatherCountMatchesGraphStructure)
{
    // The engine must fetch exactly (|E| + |V|) x featureLines input
    // lines for one full aggregation pass — a hard accounting
    // invariant tying the trace model to the graph.
    Machine machine(paperMachine(8));
    LayerWorkload w;
    w.graph = &graph_;
    w.fIn = 128;
    w.fOut = 128;
    w.impl = LayerImpl::DmaFused;
    w.doUpdate = false;
    RunResult result = simulateLayer(machine, w);
    std::uint64_t inputFetches = 0;
    std::uint64_t descriptors = 0;
    for (const DmaStats &engine : result.dmaStats) {
        inputFetches += engine.inputLineFetches;
        descriptors += engine.descriptors;
    }
    const std::uint64_t expected =
        (graph_.numEdges() + graph_.numVertices()) *
        featureRowLines(128);
    EXPECT_EQ(inputFetches, expected);
    EXPECT_EQ(descriptors, graph_.numVertices());
}

TEST_F(NetworkSim, CoreLoadCountIndependentOfMachineConfig)
{
    // The trace is a function of the workload, not of the machine:
    // two different cache configurations must see identical L1 access
    // demand (the timing differs, the trace does not).
    LayerWorkload w;
    w.graph = &graph_;
    w.fIn = 64;
    w.fOut = 64;
    w.impl = LayerImpl::Basic;
    Machine a(paperMachine(1));
    Machine b(paperMachine(32));
    const RunResult ra = simulateLayer(a, w);
    const RunResult rb = simulateLayer(b, w);
    std::uint64_t loadsA = 0;
    std::uint64_t loadsB = 0;
    for (const CoreStats &core : ra.coreStats)
        loadsA += core.loads + core.stores;
    for (const CoreStats &core : rb.coreStats)
        loadsB += core.loads + core.stores;
    EXPECT_EQ(loadsA, loadsB);
}

TEST_F(NetworkSim, CompressedTrafficScalesWithSparsity)
{
    LayerWorkload w;
    w.graph = &graph_;
    w.fIn = 128;
    w.fOut = 128;
    w.compressedIn = true;
    w.doUpdate = false;
    w.writeAgg = false;
    w.sparsity = 0.1;
    Machine a(paperMachine(8));
    const std::uint64_t dense10 =
        simulateLayer(a, w).l1Total.accesses;
    w.sparsity = 0.9;
    Machine b(paperMachine(8));
    const std::uint64_t dense90 =
        simulateLayer(b, w).l1Total.accesses;
    EXPECT_LT(dense90, dense10);
}

TEST_F(NetworkSim, CompositeAggregatesPhaseStats)
{
    Machine machine(paperMachine(8));
    CompositeResult result =
        simulateTraining(machine, network(LayerImpl::Basic),
                         transposed_);
    EXPECT_GT(result.totalCycles, 0u);
    EXPECT_GT(result.aggregate.l1Total.accesses, 0u);
    EXPECT_GT(result.aggregate.dram.lineTransfers, 0u);
    // Fractions must be sane.
    EXPECT_LE(result.aggregate.retiringFraction(), 1.0);
    EXPECT_LE(result.aggregate.memoryBoundFraction(), 1.0);
    EXPECT_GE(result.aggregate.retiringFraction(), 0.0);
}

} // namespace
} // namespace graphite::sim
