/**
 * @file
 * Serving-layer tests: MPSC request queue semantics (ordering, batch
 * cap, latency budget, close), hot-vertex cache residency/eviction,
 * the determinism contract (served embeddings bitwise-match an offline
 * serveOne replay of the same request id when the cache is off, and
 * stay within a bounded deviation with the cache on), the cache's
 * gather-traffic reduction, and the allocation-free steady-state
 * serving loop (fp32 and bf16) under ScopedAllocGuard.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "common/alloc_guard.h"
#include "common/rng.h"
#include "graph/delta_csr.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "obs/metrics.h"
#include "sampling/neighbor_sampler.h"
#include "serve/hot_vertex_cache.h"
#include "serve/load_gen.h"
#include "serve/request_queue.h"
#include "serve/server.h"

namespace graphite {
namespace {

using serve::HotVertexCache;
using serve::InferenceRequest;
using serve::InferenceServer;
using serve::RequestQueue;
using serve::ServeConfig;

CsrGraph
testGraph()
{
    return generateBarabasiAlbert(800, 6, 42);
}

/** Two-layer SAGE-style stack over @p featureWidth inputs. */
struct TestModel
{
    explicit TestModel(std::size_t featureWidth)
        : hidden(featureWidth, 24, true), output(24, 8, false)
    {
        hidden.initWeights(11);
        output.initWeights(12);
    }

    std::vector<GnnLayer *> layers() { return {&hidden, &output}; }

    GnnLayer hidden;
    GnnLayer output;
};

InferenceRequest
makeRequest(std::uint64_t id, VertexId vertex)
{
    InferenceRequest req;
    req.id = id;
    req.vertex = vertex;
    req.enqueueNs = serve::monotonicNanos();
    return req;
}

// ------------------------------------------------------------------
// RequestQueue
// ------------------------------------------------------------------

TEST(RequestQueue, PopBatchPreservesFifoOrder)
{
    RequestQueue queue(16);
    for (std::uint64_t i = 0; i < 5; ++i)
        ASSERT_TRUE(queue.push(makeRequest(i, static_cast<VertexId>(i))));
    std::vector<InferenceRequest> batch(8);
    const std::size_t n = queue.popBatch(batch.data(), 8, 0);
    ASSERT_EQ(n, 5u);
    for (std::uint64_t i = 0; i < n; ++i)
        EXPECT_EQ(batch[i].id, i);
}

TEST(RequestQueue, PopBatchHonorsMaxBatch)
{
    RequestQueue queue(16);
    for (std::uint64_t i = 0; i < 10; ++i)
        ASSERT_TRUE(queue.push(makeRequest(i, 0)));
    std::vector<InferenceRequest> batch(4);
    EXPECT_EQ(queue.popBatch(batch.data(), 4, 0), 4u);
    EXPECT_EQ(queue.size(), 6u);
    EXPECT_EQ(queue.popBatch(batch.data(), 4, 0), 4u);
    EXPECT_EQ(queue.popBatch(batch.data(), 4, 0), 2u);
}

TEST(RequestQueue, PushFailsWhenFullOrClosed)
{
    RequestQueue queue(2);
    EXPECT_TRUE(queue.push(makeRequest(0, 0)));
    EXPECT_TRUE(queue.push(makeRequest(1, 0)));
    EXPECT_FALSE(queue.push(makeRequest(2, 0))); // full: shed, not block
    queue.close();
    EXPECT_FALSE(queue.push(makeRequest(3, 0)));
    std::vector<InferenceRequest> batch(4);
    EXPECT_EQ(queue.popBatch(batch.data(), 4, 0), 2u);
    EXPECT_EQ(queue.popBatch(batch.data(), 4, 0), 0u); // closed+drained
}

TEST(RequestQueue, BudgetCoalescesLateArrivals)
{
    RequestQueue queue(16);
    ASSERT_TRUE(queue.push(makeRequest(0, 0)));
    std::thread producer([&queue] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        queue.push(makeRequest(1, 0));
    });
    std::vector<InferenceRequest> batch(4);
    // 200ms budget: the second request lands well inside it, so one
    // batch carries both.
    const std::size_t n =
        queue.popBatch(batch.data(), 4, 200'000'000);
    producer.join();
    EXPECT_EQ(n, 2u);
}

TEST(RequestQueue, ManyProducersOneConsumerLosesNothing)
{
    constexpr std::size_t kProducers = 4;
    constexpr std::uint64_t kPerProducer = 500;
    RequestQueue queue(64);
    std::atomic<std::uint64_t> accepted{0};
    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&queue, &accepted, p] {
            for (std::uint64_t i = 0; i < kPerProducer; ++i) {
                if (queue.push(makeRequest(p * kPerProducer + i, 0)))
                    accepted.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    std::uint64_t consumed = 0;
    std::thread consumer([&queue, &consumed] {
        std::vector<InferenceRequest> batch(32);
        for (;;) {
            const std::size_t n =
                queue.popBatch(batch.data(), 32, 100'000);
            if (n == 0)
                return;
            consumed += n;
        }
    });
    for (auto &t : producers)
        t.join();
    queue.close();
    consumer.join();
    EXPECT_EQ(consumed, accepted.load());
    EXPECT_GT(consumed, 0u);
}

// ------------------------------------------------------------------
// HotVertexCache
// ------------------------------------------------------------------

TEST(HotVertexCache, PutLookupRoundtrip)
{
    HotVertexCache cache(8, 2, 4, 10);
    EXPECT_TRUE(cache.enabled());
    EXPECT_TRUE(cache.admits(10));
    EXPECT_FALSE(cache.admits(9));
    const Feature row[4] = {1.0f, 2.0f, 3.0f, 4.0f};
    Feature out[4] = {};
    EXPECT_FALSE(cache.lookup(7, out));
    cache.put(7, row);
    ASSERT_TRUE(cache.lookup(7, out));
    EXPECT_EQ(0, std::memcmp(row, out, sizeof(row)));
    // Overwrite in place.
    const Feature row2[4] = {9.0f, 8.0f, 7.0f, 6.0f};
    cache.put(7, row2);
    ASSERT_TRUE(cache.lookup(7, out));
    EXPECT_EQ(0, std::memcmp(row2, out, sizeof(row2)));
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.puts, 2u);
}

TEST(HotVertexCache, ZeroCapacityDisables)
{
    HotVertexCache cache(0, 4, 4, 0);
    EXPECT_FALSE(cache.enabled());
    const Feature row[4] = {1.0f, 2.0f, 3.0f, 4.0f};
    Feature out[4] = {};
    cache.put(3, row);
    EXPECT_FALSE(cache.lookup(3, out));
}

TEST(HotVertexCache, ChurnFreeThresholdBoundsAdmissibleSet)
{
    const CsrGraph graph = testGraph();
    const std::size_t capacity = 64;
    const EdgeId threshold =
        serve::churnFreeDegreeThreshold(graph, capacity);
    EXPECT_GT(threshold, 0u);
    // Rank-pivot guarantees: at most capacity/2 vertices sit strictly
    // above the pivot degree (so the hot set fits with headroom), and
    // at least capacity/2 meet it (so the cache is not starved).
    std::size_t above = 0;
    std::size_t admissible = 0;
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        above += graph.degree(v) > threshold ? 1 : 0;
        admissible += graph.degree(v) >= threshold ? 1 : 0;
    }
    EXPECT_LE(above, capacity / 2);
    EXPECT_GE(admissible, capacity / 2);
    EXPECT_EQ(serve::churnFreeDegreeThreshold(graph, 0), 0u);
}

TEST(HotVertexCache, ClockSecondChanceKeepsReferencedRow)
{
    // One shard, three slots; traced CLOCK-hand sequence where the ref
    // bit is decisive. Fill slots 0..2 with vertices 1..3 (all
    // referenced, hand at 0).
    HotVertexCache cache(3, 1, 1, 0);
    Feature row[1];
    Feature out[1];
    for (VertexId v = 1; v <= 3; ++v) {
        row[0] = static_cast<Feature>(v);
        cache.put(v, row);
    }
    // A full shard forces a sweep: all three bits are stripped, the
    // hand wraps to slot 0 and evicts vertex 1; vertex 4 takes its
    // slot (referenced), hand rests on slot 1.
    row[0] = 4.0f;
    cache.put(4, row);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_FALSE(cache.lookup(1, out));
    // Re-reference vertex 2 (slot 1, where the hand points). The next
    // eviction must spend that bit and pass over to vertex 3 — the
    // second chance in action: without the lookup, vertex 2 would be
    // the victim.
    ASSERT_TRUE(cache.lookup(2, out));
    row[0] = 5.0f;
    cache.put(5, row);
    EXPECT_EQ(cache.stats().evictions, 2u);
    EXPECT_TRUE(cache.lookup(2, out));
    EXPECT_FALSE(cache.lookup(3, out));
    ASSERT_TRUE(cache.lookup(5, out));
    EXPECT_EQ(out[0], 5.0f);
    EXPECT_TRUE(cache.lookup(4, out));
}

TEST(HotVertexCache, ChurnKeepsIndexConsistent)
{
    // Far more distinct vertices than slots: every put past capacity
    // evicts (tombstoning the index), which forces the in-place rehash
    // repeatedly. The resident set must stay exactly capacity-sized
    // and every hit must return the row that was put.
    HotVertexCache cache(16, 4, 2, 0);
    Feature row[2];
    Feature out[2];
    for (int round = 0; round < 50; ++round) {
        for (VertexId v = 0; v < 64; ++v) {
            row[0] = static_cast<Feature>(v);
            row[1] = static_cast<Feature>(round);
            cache.put(v, row);
            ASSERT_TRUE(cache.lookup(v, out));
            EXPECT_EQ(out[0], static_cast<Feature>(v));
            EXPECT_EQ(out[1], static_cast<Feature>(round));
        }
    }
    EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(HotVertexCache, ConcurrentMixedTrafficStaysCoherent)
{
    HotVertexCache cache(64, 8, 4, 0);
    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    std::atomic<bool> failed{false};
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, &failed, t] {
            Feature row[4];
            Feature out[4];
            for (int i = 0; i < 2000; ++i) {
                const auto v = static_cast<VertexId>((t * 31 + i) % 96);
                row[0] = row[1] = row[2] = row[3] =
                    static_cast<Feature>(v);
                cache.put(v, row);
                if (cache.lookup(v, out) &&
                    out[0] != static_cast<Feature>(v))
                    failed.store(true, std::memory_order_relaxed);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    // A concurrent put may legitimately replace the row between this
    // thread's put and lookup — but only with that vertex's own value.
    EXPECT_FALSE(failed.load());
}

// ------------------------------------------------------------------
// Sampling determinism (per-request seeding)
// ------------------------------------------------------------------

TEST(ServeSampling, RequestSeedIsDeterministicAndDispersed)
{
    EXPECT_EQ(requestSeed(42), requestSeed(42));
    EXPECT_NE(requestSeed(42), requestSeed(43));
    EXPECT_NE(requestSeed(0), requestSeed(1));
}

TEST(ServeSampling, SampleTreeReplaysBitIdentically)
{
    const CsrGraph graph = testGraph();
    const std::vector<VertexId> fanouts = {4, 4};
    SamplerScratch scratchA(graph.numVertices());
    SamplerScratch scratchB(graph.numVertices());
    SampledTree treeA;
    SampledTree treeB;
    // Replay after unrelated interleaved use of the same scratch.
    for (std::uint64_t id = 0; id < 20; ++id) {
        Rng rngA(requestSeed(id));
        sampleTree(graph, static_cast<VertexId>(id * 7 % 800), fanouts,
                   rngA, scratchA, treeA);
        Rng rngOther(requestSeed(id + 1000));
        SampledTree scratchTree;
        sampleTree(graph, 3, fanouts, rngOther, scratchB, scratchTree);
        Rng rngB(requestSeed(id));
        sampleTree(graph, static_cast<VertexId>(id * 7 % 800), fanouts,
                   rngB, scratchB, treeB);
        ASSERT_EQ(treeA.blocks.size(), treeB.blocks.size());
        for (std::size_t k = 0; k < treeA.blocks.size(); ++k) {
            EXPECT_EQ(treeA.blocks[k].rowPtr, treeB.blocks[k].rowPtr);
            EXPECT_EQ(treeA.blocks[k].colIdx, treeB.blocks[k].colIdx);
            EXPECT_EQ(treeA.blocks[k].dstVertices,
                      treeB.blocks[k].dstVertices);
            EXPECT_EQ(treeA.blocks[k].srcVertices,
                      treeB.blocks[k].srcVertices);
        }
    }
}

TEST(ServeSampling, BlocksKeepDstPrefixInvariant)
{
    const CsrGraph graph = testGraph();
    const std::vector<VertexId> fanouts = {3, 5};
    SamplerScratch scratch(graph.numVertices());
    SampledTree tree;
    Rng rng(requestSeed(9));
    sampleTree(graph, 123, fanouts, rng, scratch, tree);
    ASSERT_EQ(tree.blocks.size(), 2u);
    EXPECT_EQ(tree.blocks[1].dstVertices.size(), 1u);
    EXPECT_EQ(tree.blocks[1].dstVertices[0], 123u);
    for (std::size_t k = 0; k < tree.blocks.size(); ++k) {
        const FlatBlock &block = tree.blocks[k];
        ASSERT_EQ(block.rowPtr.size(), block.dstVertices.size() + 1);
        for (std::size_t i = 0; i < block.dstVertices.size(); ++i)
            EXPECT_EQ(block.srcVertices[i], block.dstVertices[i]);
        for (const VertexId col : block.colIdx)
            EXPECT_LT(col, block.srcVertices.size());
    }
    // Layer 1's sources are layer 0's destinations, in order.
    EXPECT_EQ(tree.blocks[1].srcVertices, tree.blocks[0].dstVertices);
}

// ------------------------------------------------------------------
// InferenceServer
// ------------------------------------------------------------------

TEST(InferenceServer, ServedEmbeddingsBitwiseMatchOfflineReplay)
{
    const CsrGraph graph = testGraph();
    DenseMatrix features(graph.numVertices(), 16);
    features.fillUniform(0.0f, 1.0f, 7);
    TestModel model(16);
    ServeConfig config;
    config.fanouts = {5, 5};
    config.maxBatch = 16;
    config.latencyBudgetUs = 500;
    config.hotCacheCapacity = 0; // determinism mode
    InferenceServer server(graph, features, model.layers(), config);

    constexpr std::size_t kRequests = 64;
    DenseMatrix served(kRequests, server.outFeatures());
    std::thread consumer([&server] { server.run(); });
    for (std::size_t i = 0; i < kRequests; ++i) {
        InferenceRequest req = makeRequest(
            i, static_cast<VertexId>((i * 37) % graph.numVertices()));
        req.out = served.row(i);
        while (!server.queue().push(req))
            std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    server.queue().close();
    consumer.join();

    std::vector<Feature> replay(server.outFeatures());
    for (std::size_t i = 0; i < kRequests; ++i) {
        server.serveOne(i,
                        static_cast<VertexId>((i * 37) %
                                              graph.numVertices()),
                        replay.data());
        EXPECT_EQ(0, std::memcmp(served.row(i), replay.data(),
                                 replay.size() * sizeof(Feature)))
            << "request " << i
            << " served embedding differs from offline replay";
    }
    // run() served kRequests; the replay loop served them once more.
    EXPECT_EQ(server.stats().requestsServed, 2 * kRequests);
}

TEST(InferenceServer, CachedHubsStayWithinBoundedError)
{
    const CsrGraph graph = testGraph();
    DenseMatrix features(graph.numVertices(), 16);
    features.fillUniform(0.0f, 1.0f, 8);
    TestModel model(16);
    ServeConfig config;
    config.fanouts = {5, 5};
    config.maxBatch = 16;
    config.hotCacheCapacity = 64;
    InferenceServer server(graph, features, model.layers(), config);
    EXPECT_GE(server.hotDegreeThreshold(), 6u); // > max fanout

    constexpr std::size_t kRequests = 128;
    DenseMatrix served(kRequests, server.outFeatures());
    std::thread consumer([&server] { server.run(); });
    for (std::size_t i = 0; i < kRequests; ++i) {
        // Hammer a small popular set so hub destinations recur.
        InferenceRequest req = makeRequest(
            i, static_cast<VertexId>((i * 3) % 32));
        req.out = served.row(i);
        while (!server.queue().push(req))
            std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    server.queue().close();
    consumer.join();
    EXPECT_GT(server.stats().cache.hits, 0u);

    // The cached row swaps a sampled mean for the full-neighborhood
    // mean: same estimand, bounded deviation. Outputs must be finite
    // and within a loose relative L2 distance of the exact-replay
    // oracle.
    std::vector<Feature> replay(server.outFeatures());
    for (std::size_t i = 0; i < kRequests; ++i) {
        server.serveOne(i, static_cast<VertexId>((i * 3) % 32),
                        replay.data());
        double diff2 = 0.0;
        double norm2 = 0.0;
        for (std::size_t c = 0; c < replay.size(); ++c) {
            ASSERT_TRUE(std::isfinite(served.row(i)[c]));
            const double d = served.row(i)[c] - replay[c];
            diff2 += d * d;
            norm2 += replay[c] * replay[c];
        }
        EXPECT_LE(std::sqrt(diff2), 0.75 * std::sqrt(norm2) + 1e-3)
            << "request " << i << " deviates implausibly far";
    }
}

TEST(InferenceServer, CacheReducesGatherTraffic)
{
    const CsrGraph graph = testGraph();
    DenseMatrix features(graph.numVertices(), 16);
    features.fillUniform(0.0f, 1.0f, 9);
    TestModel modelOn(16);
    TestModel modelOff(16);

    const auto runWorkload = [&graph](InferenceServer &server) {
        constexpr std::size_t kRequests = 256;
        std::thread consumer([&server] { server.run(); });
        for (std::size_t i = 0; i < kRequests; ++i) {
            InferenceRequest req = makeRequest(
                i, static_cast<VertexId>((i * 5) % 24));
            while (!server.queue().push(req))
                std::this_thread::sleep_for(
                    std::chrono::microseconds(50));
        }
        server.queue().close();
        consumer.join();
        return server.stats();
    };

    ServeConfig on;
    on.fanouts = {5, 5};
    on.hotCacheCapacity = 128;
    ServeConfig off = on;
    off.hotCacheCapacity = 0;
    InferenceServer serverOn(graph, features, modelOn.layers(), on);
    InferenceServer serverOff(graph, features, modelOff.layers(), off);
    const auto statsOn = runWorkload(serverOn);
    const auto statsOff = runWorkload(serverOff);
    EXPECT_EQ(statsOn.requestsServed, statsOff.requestsServed);
    EXPECT_GT(statsOn.cache.hits, 0u);
    EXPECT_LT(statsOn.bytesGathered, statsOff.bytesGathered)
        << "hub caching must shrink aggregation gather traffic";
}

/** Allocation-free steady state: warm up, then a full run() drain. */
void
expectAllocFreeServing(Precision precision)
{
    const CsrGraph graph = testGraph();
    DenseMatrix features(graph.numVertices(), 16);
    features.fillUniform(0.0f, 1.0f, 10);
    TestModel model(16);
    ServeConfig config;
    config.fanouts = {5, 5};
    config.maxBatch = 16;
    config.latencyBudgetUs = 50;
    config.hotCacheCapacity = 64;
    config.precision = precision;
    InferenceServer server(graph, features, model.layers(), config);
    obs::MetricsRegistry::global().setEnabled(true);
    server.warmup();

    constexpr std::size_t kRequests = 128;
    DenseMatrix served(kRequests, server.outFeatures());
    for (std::size_t i = 0; i < kRequests; ++i) {
        InferenceRequest req = makeRequest(
            i, static_cast<VertexId>((i * 13) % graph.numVertices()));
        req.out = served.row(i);
        ASSERT_TRUE(server.queue().push(req));
    }
    server.queue().close();
    {
        ScopedAllocGuard guard("serve steady state");
        server.run();
        if (ScopedAllocGuard::interpositionActive()) {
            EXPECT_EQ(guard.allocations(), 0u)
                << "serving loop allocated after warmup";
        }
    }
    obs::MetricsRegistry::global().setEnabled(false);
    EXPECT_GE(server.stats().requestsServed, kRequests);
}

TEST(InferenceServer, SteadyStateServingIsAllocFreeFp32)
{
    expectAllocFreeServing(Precision::Fp32);
}

TEST(InferenceServer, SteadyStateServingIsAllocFreeBf16)
{
    expectAllocFreeServing(Precision::Bf16);
}

// ------------------------------------------------------------------
// Disabled-cache stats (regression: lookup counted misses while
// disabled, so cache-off A/B legs reported a fake 0% hit rate)
// ------------------------------------------------------------------

TEST(HotVertexCache, DisabledLookupTouchesNoStats)
{
    HotVertexCache cache(0, 4, 4, 0);
    Feature out[4] = {};
    for (VertexId v = 0; v < 100; ++v)
        EXPECT_FALSE(cache.lookup(v, out));
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 0u)
        << "a disabled cache must not report misses";
    EXPECT_EQ(stats.puts, 0u);
    EXPECT_EQ(stats.invalidations, 0u);
}

// ------------------------------------------------------------------
// Invalidation / epoch protocol
// ------------------------------------------------------------------

TEST(HotVertexCache, InvalidateDropsRowAndRejectsStaleFills)
{
    HotVertexCache cache(8, 1, 2, 0);
    const Feature row[2] = {1.0f, 2.0f};
    Feature out[2] = {};
    cache.put(7, row);
    ASSERT_TRUE(cache.lookup(7, out));

    // A fill snapshots the epoch before gathering; an invalidation in
    // between must reject the (stale-adjacency) install.
    const std::uint64_t preInsert = cache.fillEpoch(7);
    EXPECT_TRUE(cache.invalidate(7));
    EXPECT_FALSE(cache.lookup(7, out));
    EXPECT_FALSE(cache.putIfFresh(7, row, preInsert))
        << "a fill gathered before the invalidation must be rejected";
    EXPECT_FALSE(cache.lookup(7, out));

    // A fill gathered after the invalidation installs normally.
    const std::uint64_t postInsert = cache.fillEpoch(7);
    EXPECT_TRUE(cache.putIfFresh(7, row, postInsert));
    ASSERT_TRUE(cache.lookup(7, out));
    EXPECT_EQ(0, std::memcmp(row, out, sizeof(row)));

    // Invalidating a non-resident vertex still bumps the epoch (it
    // must fence in-flight fills of not-yet-resident vertices).
    const std::uint64_t epoch = cache.fillEpoch(1234);
    EXPECT_FALSE(cache.invalidate(1234));
    EXPECT_NE(cache.fillEpoch(1234), epoch);
    EXPECT_GE(cache.stats().invalidations, 2u);
}

TEST(HotVertexCache, PatchMeanRowAppliesExactMeanUpdate)
{
    HotVertexCache cache(4, 1, 3, 0);
    // Cached row = mean of (self + 2 neighbors) => oldDegree = 2.
    const Feature cached[3] = {3.0f, 6.0f, 9.0f};
    const Feature added[3] = {7.0f, 11.0f, 1.0f};
    cache.put(5, cached);
    const std::uint64_t epoch = cache.fillEpoch(5);
    EXPECT_TRUE(cache.patchMeanRow(5, added, 2));
    Feature out[3] = {};
    ASSERT_TRUE(cache.lookup(5, out));
    for (std::size_t c = 0; c < 3; ++c) {
        const float expect = (cached[c] * 3.0f + added[c]) / 4.0f;
        EXPECT_FLOAT_EQ(out[c], expect);
    }
    // The patch bumps the epoch too: a concurrent stale fill must not
    // overwrite the patched row.
    EXPECT_FALSE(cache.putIfFresh(5, cached, epoch));
    // Non-resident vertices are not patched.
    EXPECT_FALSE(cache.patchMeanRow(99, added, 4));
}

// ------------------------------------------------------------------
// rehashShard tombstone purge (tombstones * 4 > table.size())
// ------------------------------------------------------------------

TEST(HotVertexCache, RehashPurgesTombstonesAndKeepsResidents)
{
    // One shard, 8 slots -> table of 16 cells; the purge triggers once
    // tombstones exceed 4. Drive put/invalidate churn far past that
    // and verify the index never loses a resident and probes always
    // terminate (an un-purged table would fill with tombstones and
    // findSlot would spin).
    HotVertexCache cache(8, 1, 2, 0);
    Feature row[2];
    Feature out[2];
    std::vector<VertexId> resident;
    for (int round = 0; round < 200; ++round) {
        // Install a fresh generation of 8 residents.
        resident.clear();
        for (VertexId k = 0; k < 8; ++k) {
            const auto v = static_cast<VertexId>(round * 8 + k);
            row[0] = static_cast<Feature>(v);
            row[1] = static_cast<Feature>(round);
            cache.put(v, row);
            resident.push_back(v);
        }
        // Invalidate half of them (tombstoning the index each time).
        for (std::size_t i = 0; i < resident.size(); i += 2)
            EXPECT_TRUE(cache.invalidate(resident[i]));
        // The surviving half must still hit with intact rows.
        for (std::size_t i = 1; i < resident.size(); i += 2) {
            ASSERT_TRUE(cache.lookup(resident[i], out))
                << "round " << round << ": resident "
                << resident[i] << " lost";
            EXPECT_EQ(out[0], static_cast<Feature>(resident[i]));
            EXPECT_EQ(out[1], static_cast<Feature>(round));
        }
        // And the invalidated half must stay gone.
        for (std::size_t i = 0; i < resident.size(); i += 2)
            EXPECT_FALSE(cache.lookup(resident[i], out));
    }
    // 200 rounds x 4 invalidations churned far past the purge budget
    // of one 16-cell table; survival of the loop proves the purge ran.
    EXPECT_EQ(cache.stats().invalidations, 200u * 4u);
}

TEST(HotVertexCache, ClearDropsEverythingAndBumpsEpochs)
{
    HotVertexCache cache(16, 4, 2, 0);
    Feature row[2] = {1.0f, 2.0f};
    Feature out[2];
    for (VertexId v = 0; v < 16; ++v)
        cache.put(v, row);
    const std::uint64_t epoch = cache.fillEpoch(3);
    cache.clear();
    for (VertexId v = 0; v < 16; ++v)
        EXPECT_FALSE(cache.lookup(v, out));
    EXPECT_NE(cache.fillEpoch(3), epoch);
    EXPECT_FALSE(cache.putIfFresh(3, row, epoch))
        << "fills gathered before clear() must be rejected";
    // The cache stays fully usable after the flush.
    cache.put(3, row);
    EXPECT_TRUE(cache.lookup(3, out));
}

// ------------------------------------------------------------------
// Load-gen percentile convention (regression: q*(n-1) half-up
// rounding disagreed with MetricsRegistry::estimateQuantile)
// ------------------------------------------------------------------

TEST(LoadGen, ExactPercentileUsesNearestRank)
{
    // Nearest rank: the ceil(q*n)-th smallest, clamped to [1, n].
    std::vector<double> v = {40.0, 10.0, 30.0, 20.0};
    EXPECT_EQ(serve::exactPercentile(v, 0.50), 20.0)
        << "rank ceil(0.5*4)=2 -> second smallest (the old half-up "
           "rounding of q*(n-1) picked the third)";
    EXPECT_EQ(serve::exactPercentile(v, 0.25), 10.0);
    EXPECT_EQ(serve::exactPercentile(v, 0.51), 30.0);
    EXPECT_EQ(serve::exactPercentile(v, 0.75), 30.0);
    EXPECT_EQ(serve::exactPercentile(v, 1.0), 40.0);
    EXPECT_EQ(serve::exactPercentile(v, 0.0), 10.0)
        << "rank clamps to 1: q=0 is the smallest sample";
    std::vector<double> empty;
    EXPECT_EQ(serve::exactPercentile(empty, 0.5), 0.0);

    // Rank agreement with estimateQuantile's convention on 1..n (value
    // == its rank, so the selected value IS the selected rank).
    std::vector<double> ranks(100);
    for (std::size_t i = 0; i < ranks.size(); ++i)
        ranks[i] = static_cast<double>(i + 1);
    for (const double q : {0.01, 0.5, 0.9, 0.99, 0.999}) {
        const double exact = q * 100.0;
        double want = std::ceil(exact);
        if (want < 1.0)
            want = 1.0;
        std::vector<double> shuffled = ranks;
        EXPECT_EQ(serve::exactPercentile(shuffled, q), want)
            << "q = " << q;
    }
}

TEST(LoadGen, ExactPercentileAgreesWithHistogramOnDegenerateBuckets)
{
    // All samples equal: the histogram estimate clamps to [min, max]
    // and becomes exact, so the two quantile paths must coincide.
    const std::uint64_t value = 96;
    std::vector<std::uint64_t> buckets(64, 0);
    std::size_t width = 0;
    for (std::uint64_t x = value; x > 0; x >>= 1)
        ++width;
    buckets[width] = 10;
    std::vector<double> samples(10, static_cast<double>(value));
    for (const double q : {0.5, 0.9, 0.99}) {
        EXPECT_EQ(obs::estimateQuantile(buckets, 10, value, value, q),
                  static_cast<double>(value));
        std::vector<double> scratch = samples;
        EXPECT_EQ(serve::exactPercentile(scratch, q),
                  static_cast<double>(value));
    }
}

TEST(InferenceServer, LoadGeneratorReportsSaneNumbers)
{
    const CsrGraph graph = testGraph();
    DenseMatrix features(graph.numVertices(), 16);
    features.fillUniform(0.0f, 1.0f, 11);
    TestModel model(16);
    ServeConfig config;
    config.fanouts = {5, 5};
    config.maxBatch = 16;
    config.latencyBudgetUs = 100;
    config.hotCacheCapacity = 64;
    InferenceServer server(graph, features, model.layers(), config);
    serve::LoadGenConfig load;
    load.numRequests = 500;
    load.warmupRequests = 100;
    load.offeredQps = 50000.0;
    load.zipfExponent = 0.9;
    const serve::LoadGenReport report =
        serve::runServeLoad(server, load);
    EXPECT_GT(report.qps, 0.0);
    EXPECT_GE(report.p99Us, report.p50Us);
    EXPECT_GE(report.cacheHitRate, 0.0);
    EXPECT_LE(report.cacheHitRate, 1.0);
    EXPECT_GT(report.bytesGathered, 0u);
    EXPECT_EQ(report.accepted + report.dropped, 500u);
}

// ------------------------------------------------------------------
// Dynamic-graph serving (delta-CSR overlay, DESIGN.md §14)
// ------------------------------------------------------------------

/** Spin until @p server has served at least @p target requests. */
void
waitServed(InferenceServer &server, std::uint64_t target)
{
    while (server.stats().requestsServed < target)
        std::this_thread::sleep_for(std::chrono::microseconds(100));
}

TEST(DynamicServing, CacheOnMatchesHubExactOracleUnderChurn)
{
    // Rounds of edge inserts interleaved with served batches: after
    // every round, each cache-enabled served embedding must match the
    // cache-bypassed hub-exact forward on the same overlay bitwise —
    // the invalidation protocol's acceptance contract.
    DeltaCsr overlay(generateBarabasiAlbert(800, 6, 42), 4096);
    DenseMatrix features(overlay.numVertices(), 16);
    features.fillUniform(0.0f, 1.0f, 7);
    TestModel model(16);
    ServeConfig config;
    config.fanouts = {5, 5};
    config.maxBatch = 16;
    config.latencyBudgetUs = 500;
    config.hotCacheCapacity = 64;
    InferenceServer server(overlay, features, model.layers(), config);

    std::thread consumer([&server] { server.run(); });
    Rng rng(17);
    std::vector<Feature> replay(server.outFeatures());
    DenseMatrix served(16, server.outFeatures());
    std::uint64_t servedSoFar = 0;
    for (int round = 0; round < 6; ++round) {
        // Churn: 40 accepted inserts through the server's update path.
        for (int i = 0; i < 40;) {
            const auto src = static_cast<VertexId>(rng.next() % 800);
            const auto dst = static_cast<VertexId>(rng.next() % 800);
            if (server.insertEdge(src, dst) == DeltaCsr::AddEdge::Added)
                ++i;
        }
        // Serve one batch of hub-heavy requests.
        for (std::uint64_t i = 0; i < 16; ++i) {
            InferenceRequest req = makeRequest(
                round * 16 + i, static_cast<VertexId>((i * 3) % 48));
            req.out = served.row(i);
            while (!server.queue().push(req))
                std::this_thread::sleep_for(
                    std::chrono::microseconds(50));
        }
        servedSoFar += 16;
        waitServed(server, servedSoFar);
        // Churn is quiesced: replay each request against the
        // cache-bypassed oracle on the same overlay.
        for (std::uint64_t i = 0; i < 16; ++i) {
            server.serveOneHubExact(round * 16 + i,
                                    static_cast<VertexId>((i * 3) % 48),
                                    replay.data());
            EXPECT_EQ(0,
                      std::memcmp(served.row(i), replay.data(),
                                  replay.size() * sizeof(Feature)))
                << "round " << round << " request " << i
                << ": cache-on serving diverged from the hub-exact "
                   "oracle after inserts";
        }
        servedSoFar += 16; // the replays count as served requests
    }
    server.queue().close();
    consumer.join();
    const serve::ServeStats stats = server.stats();
    EXPECT_EQ(stats.edgeInserts, 240u);
    EXPECT_GT(stats.cache.invalidations, 0u)
        << "inserts on cached hubs must invalidate";
    EXPECT_EQ(overlay.validate(), nullptr);
    EXPECT_EQ(overlay.deltaEdges(), 240u);
}

TEST(DynamicServing, PostCompactionMatchesFreshServerBitwise)
{
    const VertexId n = 600;
    DeltaCsr overlay(generateBarabasiAlbert(n, 5, 21), 2048);
    // Mirror every edge (base + inserted) into a from-scratch builder.
    GraphBuilder builder(n);
    for (VertexId v = 0; v < n; ++v)
        for (const VertexId u : overlay.baseNeighbors(v))
            builder.addEdge(v, u);

    DenseMatrix features(n, 16);
    features.fillUniform(0.0f, 1.0f, 8);
    TestModel model(16);
    ServeConfig config;
    config.fanouts = {5, 5};
    config.maxBatch = 16;
    config.hotCacheCapacity = 64;
    // Pin the admission threshold: the overlay server resolved its
    // auto threshold on pre-insert degrees, a fresh server would
    // resolve on post-insert degrees — pinning makes hub admission
    // identical so the policies compare bitwise.
    config.hotCacheMinDegree = 20;
    InferenceServer server(overlay, features, model.layers(), config);

    Rng rng(29);
    for (int i = 0; i < 700;) {
        const auto src = static_cast<VertexId>(rng.next() % n);
        const auto dst = static_cast<VertexId>(rng.next() % n);
        if (server.insertEdge(src, dst) == DeltaCsr::AddEdge::Added) {
            builder.addEdge(src, dst);
            ++i;
        }
    }
    // Consumer idle -> compactNow is legal.
    server.compactNow();
    EXPECT_EQ(server.stats().compactions, 1u);
    EXPECT_EQ(overlay.deltaEdges(), 0u);

    const CsrGraph fresh = builder.build();
    TestModel freshModel(16);
    InferenceServer freshServer(fresh, features, freshModel.layers(),
                                config);

    std::vector<Feature> a(server.outFeatures());
    std::vector<Feature> b(server.outFeatures());
    for (std::uint64_t id = 0; id < 40; ++id) {
        const auto v = static_cast<VertexId>((id * 13) % n);
        server.serveOne(id, v, a.data());
        freshServer.serveOne(id, v, b.data());
        EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                                 a.size() * sizeof(Feature)))
            << "sampled replay " << id
            << " differs between compacted overlay and fresh build";
        server.serveOneHubExact(id, v, a.data());
        freshServer.serveOneHubExact(id, v, b.data());
        EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                                 a.size() * sizeof(Feature)))
            << "hub-exact replay " << id
            << " differs between compacted overlay and fresh build";
    }
    EXPECT_EQ(0,
              std::memcmp(overlay.base().colIdx().data(),
                          fresh.colIdx().data(),
                          fresh.colIdx().size() * sizeof(VertexId)))
        << "compacted adjacency must equal the from-scratch build";
}

TEST(DynamicServing, ThresholdRefreshTracksGrowingHubs)
{
    // Base degrees: v0=6, v1=5, v2=4, v3..v9 = 1. Auto threshold with
    // capacity 2: max(3rd-largest degree, ceil-avg+1, maxFanout+1).
    GraphBuilder builder(10);
    for (VertexId u = 1; u <= 6; ++u)
        builder.addEdge(0, u);
    for (VertexId u = 2; u <= 6; ++u)
        builder.addEdge(1, u);
    for (VertexId u = 3; u <= 6; ++u)
        builder.addEdge(2, u);
    for (VertexId v = 3; v < 10; ++v)
        builder.addEdge(v, (v + 1) % 10);
    DeltaCsr overlay(builder.build(), 64);

    DenseMatrix features(10, 8);
    features.fillUniform(0.0f, 1.0f, 9);
    TestModel model(8);
    ServeConfig config;
    config.fanouts = {2, 2};
    config.maxBatch = 4;
    config.hotCacheCapacity = 2;
    config.hotCacheShards = 1;
    config.hotCacheMinDegree = 0;  // auto: refresh may move it
    config.thresholdRefreshEvery = 1;
    InferenceServer server(overlay, features, model.layers(), config);
    const EdgeId initial = server.hotDegreeThreshold();
    EXPECT_EQ(initial, 4u);

    // Grow v3 from degree 1 to 9: the capacity-th largest degree rises
    // to 5, and every accepted insert re-derives the threshold.
    for (VertexId u = 0; u < 10; ++u) {
        if (u == 3 || u == 4)
            continue;
        ASSERT_EQ(server.insertEdge(3, u), DeltaCsr::AddEdge::Added);
    }
    EXPECT_GE(server.hotDegreeThreshold(), 5u)
        << "the admission gate must track hub growth";
    EXPECT_GE(server.hotDegreeThreshold(), initial)
        << "the refreshed threshold is clamped monotone";
    const GraphStats live = server.liveGraphStats();
    EXPECT_EQ(live.numEdges, overlay.numEdges());
    EXPECT_EQ(live.maxDegree, 9u);
}

TEST(DynamicServing, ConcurrentChurnWhileServingStaysCoherent)
{
    // The TSan target of the bugfix sweep: producers push requests,
    // an updater inserts edges and requests compactions, the consumer
    // serves — all concurrently. Coherence checks: stats add up, the
    // overlay validates, and every served embedding is finite.
    DeltaCsr overlay(generateBarabasiAlbert(800, 6, 42), 8192);
    DenseMatrix features(overlay.numVertices(), 16);
    features.fillUniform(0.0f, 1.0f, 10);
    TestModel model(16);
    ServeConfig config;
    config.fanouts = {5, 5};
    config.maxBatch = 16;
    config.latencyBudgetUs = 100;
    config.hotCacheCapacity = 64;
    config.thresholdRefreshEvery = 64;
    InferenceServer server(overlay, features, model.layers(), config);
    server.warmup();

    constexpr std::size_t kRequests = 512;
    DenseMatrix served(kRequests, server.outFeatures());
    std::thread consumer([&server] { server.run(); });
    std::atomic<std::uint64_t> inserted{0};
    std::thread updater([&server, &inserted] {
        Rng rng(31);
        for (int i = 0; i < 1500; ++i) {
            const auto src = static_cast<VertexId>(rng.next() % 800);
            const auto dst = static_cast<VertexId>(rng.next() % 800);
            if (server.insertEdge(src, dst) ==
                DeltaCsr::AddEdge::Added)
                inserted.fetch_add(1, std::memory_order_relaxed);
            if (i % 400 == 399)
                server.requestCompaction();
        }
    });
    std::thread oracle([&server] {
        std::vector<Feature> out(server.outFeatures());
        for (std::uint64_t id = 0; id < 200; ++id)
            server.serveOneHubExact(1'000'000 + id,
                                    static_cast<VertexId>(id % 64),
                                    out.data());
    });
    for (std::size_t i = 0; i < kRequests; ++i) {
        InferenceRequest req = makeRequest(
            i, static_cast<VertexId>((i * 7) % 800));
        req.out = served.row(i);
        while (!server.queue().push(req))
            std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    updater.join();
    oracle.join();
    server.queue().close();
    consumer.join();

    const serve::ServeStats stats = server.stats();
    EXPECT_EQ(stats.edgeInserts, inserted.load());
    EXPECT_GE(stats.requestsServed, kRequests);
    EXPECT_EQ(overlay.validate(), nullptr);
    for (std::size_t i = 0; i < kRequests; ++i)
        for (std::size_t c = 0; c < server.outFeatures(); ++c)
            ASSERT_TRUE(std::isfinite(served.row(i)[c]))
                << "request " << i << " col " << c;
    const GraphStats live = server.liveGraphStats();
    EXPECT_EQ(live.numEdges, overlay.numEdges());
}

TEST(DynamicServing, SteadyStateChurnServingIsAllocFree)
{
    if (!ScopedAllocGuard::interpositionActive())
        GTEST_SKIP() << "interposer compiled out (GRAPHITE_CHECKS off)";
    DeltaCsr overlay(generateBarabasiAlbert(800, 6, 42), 8192);
    DenseMatrix features(overlay.numVertices(), 16);
    features.fillUniform(0.0f, 1.0f, 12);
    TestModel model(16);
    ServeConfig config;
    config.fanouts = {5, 5};
    config.maxBatch = 16;
    config.latencyBudgetUs = 50;
    config.hotCacheCapacity = 64;
    config.thresholdRefreshEvery = 32;
    InferenceServer server(overlay, features, model.layers(), config);
    obs::MetricsRegistry::global().setEnabled(true);
    server.warmup();
    // Warm the insert path (first counter registration, etc.).
    Rng warmRng(41);
    for (int i = 0; i < 8;) {
        const auto src = static_cast<VertexId>(warmRng.next() % 800);
        const auto dst = static_cast<VertexId>(warmRng.next() % 800);
        if (server.insertEdge(src, dst) == DeltaCsr::AddEdge::Added)
            ++i;
    }

    constexpr std::size_t kRequests = 128;
    DenseMatrix served(kRequests, server.outFeatures());
    for (std::size_t i = 0; i < kRequests; ++i) {
        InferenceRequest req = makeRequest(
            i, static_cast<VertexId>((i * 13) % 800));
        req.out = served.row(i);
        ASSERT_TRUE(server.queue().push(req));
    }
    server.queue().close();
    // Spawn the updater before the guard (thread creation allocates);
    // it waits for the start flag so its inserts land inside the
    // guarded region, concurrent with the serving drain.
    std::atomic<bool> start{false};
    std::atomic<bool> done{false};
    std::thread updater([&server, &start, &done] {
        while (!start.load(std::memory_order_acquire))
            std::this_thread::yield();
        Rng rng(43);
        for (int i = 0; i < 256;) {
            const auto src = static_cast<VertexId>(rng.next() % 800);
            const auto dst = static_cast<VertexId>(rng.next() % 800);
            if (server.insertEdge(src, dst) ==
                DeltaCsr::AddEdge::Added)
                ++i;
        }
        done.store(true, std::memory_order_release);
    });
    {
        ScopedAllocGuard guard("churn serve steady state");
        start.store(true, std::memory_order_release);
        server.run();
        while (!done.load(std::memory_order_acquire))
            std::this_thread::yield();
        if (ScopedAllocGuard::interpositionActive()) {
            EXPECT_EQ(guard.allocations(), 0u)
                << "insert+serve steady state allocated after warmup";
        }
    }
    updater.join();
    obs::MetricsRegistry::global().setEnabled(false);
    EXPECT_GE(server.stats().requestsServed, kRequests);
    EXPECT_EQ(server.stats().edgeInserts, 256u + 8u);
}

} // namespace
} // namespace graphite
