/**
 * @file
 * Serving-layer tests: MPSC request queue semantics (ordering, batch
 * cap, latency budget, close), hot-vertex cache residency/eviction,
 * the determinism contract (served embeddings bitwise-match an offline
 * serveOne replay of the same request id when the cache is off, and
 * stay within a bounded deviation with the cache on), the cache's
 * gather-traffic reduction, and the allocation-free steady-state
 * serving loop (fp32 and bf16) under ScopedAllocGuard.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "common/alloc_guard.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "sampling/neighbor_sampler.h"
#include "serve/hot_vertex_cache.h"
#include "serve/load_gen.h"
#include "serve/request_queue.h"
#include "serve/server.h"

namespace graphite {
namespace {

using serve::HotVertexCache;
using serve::InferenceRequest;
using serve::InferenceServer;
using serve::RequestQueue;
using serve::ServeConfig;

CsrGraph
testGraph()
{
    return generateBarabasiAlbert(800, 6, 42);
}

/** Two-layer SAGE-style stack over @p featureWidth inputs. */
struct TestModel
{
    explicit TestModel(std::size_t featureWidth)
        : hidden(featureWidth, 24, true), output(24, 8, false)
    {
        hidden.initWeights(11);
        output.initWeights(12);
    }

    std::vector<GnnLayer *> layers() { return {&hidden, &output}; }

    GnnLayer hidden;
    GnnLayer output;
};

InferenceRequest
makeRequest(std::uint64_t id, VertexId vertex)
{
    InferenceRequest req;
    req.id = id;
    req.vertex = vertex;
    req.enqueueNs = serve::monotonicNanos();
    return req;
}

// ------------------------------------------------------------------
// RequestQueue
// ------------------------------------------------------------------

TEST(RequestQueue, PopBatchPreservesFifoOrder)
{
    RequestQueue queue(16);
    for (std::uint64_t i = 0; i < 5; ++i)
        ASSERT_TRUE(queue.push(makeRequest(i, static_cast<VertexId>(i))));
    std::vector<InferenceRequest> batch(8);
    const std::size_t n = queue.popBatch(batch.data(), 8, 0);
    ASSERT_EQ(n, 5u);
    for (std::uint64_t i = 0; i < n; ++i)
        EXPECT_EQ(batch[i].id, i);
}

TEST(RequestQueue, PopBatchHonorsMaxBatch)
{
    RequestQueue queue(16);
    for (std::uint64_t i = 0; i < 10; ++i)
        ASSERT_TRUE(queue.push(makeRequest(i, 0)));
    std::vector<InferenceRequest> batch(4);
    EXPECT_EQ(queue.popBatch(batch.data(), 4, 0), 4u);
    EXPECT_EQ(queue.size(), 6u);
    EXPECT_EQ(queue.popBatch(batch.data(), 4, 0), 4u);
    EXPECT_EQ(queue.popBatch(batch.data(), 4, 0), 2u);
}

TEST(RequestQueue, PushFailsWhenFullOrClosed)
{
    RequestQueue queue(2);
    EXPECT_TRUE(queue.push(makeRequest(0, 0)));
    EXPECT_TRUE(queue.push(makeRequest(1, 0)));
    EXPECT_FALSE(queue.push(makeRequest(2, 0))); // full: shed, not block
    queue.close();
    EXPECT_FALSE(queue.push(makeRequest(3, 0)));
    std::vector<InferenceRequest> batch(4);
    EXPECT_EQ(queue.popBatch(batch.data(), 4, 0), 2u);
    EXPECT_EQ(queue.popBatch(batch.data(), 4, 0), 0u); // closed+drained
}

TEST(RequestQueue, BudgetCoalescesLateArrivals)
{
    RequestQueue queue(16);
    ASSERT_TRUE(queue.push(makeRequest(0, 0)));
    std::thread producer([&queue] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        queue.push(makeRequest(1, 0));
    });
    std::vector<InferenceRequest> batch(4);
    // 200ms budget: the second request lands well inside it, so one
    // batch carries both.
    const std::size_t n =
        queue.popBatch(batch.data(), 4, 200'000'000);
    producer.join();
    EXPECT_EQ(n, 2u);
}

TEST(RequestQueue, ManyProducersOneConsumerLosesNothing)
{
    constexpr std::size_t kProducers = 4;
    constexpr std::uint64_t kPerProducer = 500;
    RequestQueue queue(64);
    std::atomic<std::uint64_t> accepted{0};
    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&queue, &accepted, p] {
            for (std::uint64_t i = 0; i < kPerProducer; ++i) {
                if (queue.push(makeRequest(p * kPerProducer + i, 0)))
                    accepted.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    std::uint64_t consumed = 0;
    std::thread consumer([&queue, &consumed] {
        std::vector<InferenceRequest> batch(32);
        for (;;) {
            const std::size_t n =
                queue.popBatch(batch.data(), 32, 100'000);
            if (n == 0)
                return;
            consumed += n;
        }
    });
    for (auto &t : producers)
        t.join();
    queue.close();
    consumer.join();
    EXPECT_EQ(consumed, accepted.load());
    EXPECT_GT(consumed, 0u);
}

// ------------------------------------------------------------------
// HotVertexCache
// ------------------------------------------------------------------

TEST(HotVertexCache, PutLookupRoundtrip)
{
    HotVertexCache cache(8, 2, 4, 10);
    EXPECT_TRUE(cache.enabled());
    EXPECT_TRUE(cache.admits(10));
    EXPECT_FALSE(cache.admits(9));
    const Feature row[4] = {1.0f, 2.0f, 3.0f, 4.0f};
    Feature out[4] = {};
    EXPECT_FALSE(cache.lookup(7, out));
    cache.put(7, row);
    ASSERT_TRUE(cache.lookup(7, out));
    EXPECT_EQ(0, std::memcmp(row, out, sizeof(row)));
    // Overwrite in place.
    const Feature row2[4] = {9.0f, 8.0f, 7.0f, 6.0f};
    cache.put(7, row2);
    ASSERT_TRUE(cache.lookup(7, out));
    EXPECT_EQ(0, std::memcmp(row2, out, sizeof(row2)));
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.puts, 2u);
}

TEST(HotVertexCache, ZeroCapacityDisables)
{
    HotVertexCache cache(0, 4, 4, 0);
    EXPECT_FALSE(cache.enabled());
    const Feature row[4] = {1.0f, 2.0f, 3.0f, 4.0f};
    Feature out[4] = {};
    cache.put(3, row);
    EXPECT_FALSE(cache.lookup(3, out));
}

TEST(HotVertexCache, ChurnFreeThresholdBoundsAdmissibleSet)
{
    const CsrGraph graph = testGraph();
    const std::size_t capacity = 64;
    const EdgeId threshold =
        serve::churnFreeDegreeThreshold(graph, capacity);
    EXPECT_GT(threshold, 0u);
    // Rank-pivot guarantees: at most capacity/2 vertices sit strictly
    // above the pivot degree (so the hot set fits with headroom), and
    // at least capacity/2 meet it (so the cache is not starved).
    std::size_t above = 0;
    std::size_t admissible = 0;
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        above += graph.degree(v) > threshold ? 1 : 0;
        admissible += graph.degree(v) >= threshold ? 1 : 0;
    }
    EXPECT_LE(above, capacity / 2);
    EXPECT_GE(admissible, capacity / 2);
    EXPECT_EQ(serve::churnFreeDegreeThreshold(graph, 0), 0u);
}

TEST(HotVertexCache, ClockSecondChanceKeepsReferencedRow)
{
    // One shard, three slots; traced CLOCK-hand sequence where the ref
    // bit is decisive. Fill slots 0..2 with vertices 1..3 (all
    // referenced, hand at 0).
    HotVertexCache cache(3, 1, 1, 0);
    Feature row[1];
    Feature out[1];
    for (VertexId v = 1; v <= 3; ++v) {
        row[0] = static_cast<Feature>(v);
        cache.put(v, row);
    }
    // A full shard forces a sweep: all three bits are stripped, the
    // hand wraps to slot 0 and evicts vertex 1; vertex 4 takes its
    // slot (referenced), hand rests on slot 1.
    row[0] = 4.0f;
    cache.put(4, row);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_FALSE(cache.lookup(1, out));
    // Re-reference vertex 2 (slot 1, where the hand points). The next
    // eviction must spend that bit and pass over to vertex 3 — the
    // second chance in action: without the lookup, vertex 2 would be
    // the victim.
    ASSERT_TRUE(cache.lookup(2, out));
    row[0] = 5.0f;
    cache.put(5, row);
    EXPECT_EQ(cache.stats().evictions, 2u);
    EXPECT_TRUE(cache.lookup(2, out));
    EXPECT_FALSE(cache.lookup(3, out));
    ASSERT_TRUE(cache.lookup(5, out));
    EXPECT_EQ(out[0], 5.0f);
    EXPECT_TRUE(cache.lookup(4, out));
}

TEST(HotVertexCache, ChurnKeepsIndexConsistent)
{
    // Far more distinct vertices than slots: every put past capacity
    // evicts (tombstoning the index), which forces the in-place rehash
    // repeatedly. The resident set must stay exactly capacity-sized
    // and every hit must return the row that was put.
    HotVertexCache cache(16, 4, 2, 0);
    Feature row[2];
    Feature out[2];
    for (int round = 0; round < 50; ++round) {
        for (VertexId v = 0; v < 64; ++v) {
            row[0] = static_cast<Feature>(v);
            row[1] = static_cast<Feature>(round);
            cache.put(v, row);
            ASSERT_TRUE(cache.lookup(v, out));
            EXPECT_EQ(out[0], static_cast<Feature>(v));
            EXPECT_EQ(out[1], static_cast<Feature>(round));
        }
    }
    EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(HotVertexCache, ConcurrentMixedTrafficStaysCoherent)
{
    HotVertexCache cache(64, 8, 4, 0);
    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    std::atomic<bool> failed{false};
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, &failed, t] {
            Feature row[4];
            Feature out[4];
            for (int i = 0; i < 2000; ++i) {
                const auto v = static_cast<VertexId>((t * 31 + i) % 96);
                row[0] = row[1] = row[2] = row[3] =
                    static_cast<Feature>(v);
                cache.put(v, row);
                if (cache.lookup(v, out) &&
                    out[0] != static_cast<Feature>(v))
                    failed.store(true, std::memory_order_relaxed);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    // A concurrent put may legitimately replace the row between this
    // thread's put and lookup — but only with that vertex's own value.
    EXPECT_FALSE(failed.load());
}

// ------------------------------------------------------------------
// Sampling determinism (per-request seeding)
// ------------------------------------------------------------------

TEST(ServeSampling, RequestSeedIsDeterministicAndDispersed)
{
    EXPECT_EQ(requestSeed(42), requestSeed(42));
    EXPECT_NE(requestSeed(42), requestSeed(43));
    EXPECT_NE(requestSeed(0), requestSeed(1));
}

TEST(ServeSampling, SampleTreeReplaysBitIdentically)
{
    const CsrGraph graph = testGraph();
    const std::vector<VertexId> fanouts = {4, 4};
    SamplerScratch scratchA(graph.numVertices());
    SamplerScratch scratchB(graph.numVertices());
    SampledTree treeA;
    SampledTree treeB;
    // Replay after unrelated interleaved use of the same scratch.
    for (std::uint64_t id = 0; id < 20; ++id) {
        Rng rngA(requestSeed(id));
        sampleTree(graph, static_cast<VertexId>(id * 7 % 800), fanouts,
                   rngA, scratchA, treeA);
        Rng rngOther(requestSeed(id + 1000));
        SampledTree scratchTree;
        sampleTree(graph, 3, fanouts, rngOther, scratchB, scratchTree);
        Rng rngB(requestSeed(id));
        sampleTree(graph, static_cast<VertexId>(id * 7 % 800), fanouts,
                   rngB, scratchB, treeB);
        ASSERT_EQ(treeA.blocks.size(), treeB.blocks.size());
        for (std::size_t k = 0; k < treeA.blocks.size(); ++k) {
            EXPECT_EQ(treeA.blocks[k].rowPtr, treeB.blocks[k].rowPtr);
            EXPECT_EQ(treeA.blocks[k].colIdx, treeB.blocks[k].colIdx);
            EXPECT_EQ(treeA.blocks[k].dstVertices,
                      treeB.blocks[k].dstVertices);
            EXPECT_EQ(treeA.blocks[k].srcVertices,
                      treeB.blocks[k].srcVertices);
        }
    }
}

TEST(ServeSampling, BlocksKeepDstPrefixInvariant)
{
    const CsrGraph graph = testGraph();
    const std::vector<VertexId> fanouts = {3, 5};
    SamplerScratch scratch(graph.numVertices());
    SampledTree tree;
    Rng rng(requestSeed(9));
    sampleTree(graph, 123, fanouts, rng, scratch, tree);
    ASSERT_EQ(tree.blocks.size(), 2u);
    EXPECT_EQ(tree.blocks[1].dstVertices.size(), 1u);
    EXPECT_EQ(tree.blocks[1].dstVertices[0], 123u);
    for (std::size_t k = 0; k < tree.blocks.size(); ++k) {
        const FlatBlock &block = tree.blocks[k];
        ASSERT_EQ(block.rowPtr.size(), block.dstVertices.size() + 1);
        for (std::size_t i = 0; i < block.dstVertices.size(); ++i)
            EXPECT_EQ(block.srcVertices[i], block.dstVertices[i]);
        for (const VertexId col : block.colIdx)
            EXPECT_LT(col, block.srcVertices.size());
    }
    // Layer 1's sources are layer 0's destinations, in order.
    EXPECT_EQ(tree.blocks[1].srcVertices, tree.blocks[0].dstVertices);
}

// ------------------------------------------------------------------
// InferenceServer
// ------------------------------------------------------------------

TEST(InferenceServer, ServedEmbeddingsBitwiseMatchOfflineReplay)
{
    const CsrGraph graph = testGraph();
    DenseMatrix features(graph.numVertices(), 16);
    features.fillUniform(0.0f, 1.0f, 7);
    TestModel model(16);
    ServeConfig config;
    config.fanouts = {5, 5};
    config.maxBatch = 16;
    config.latencyBudgetUs = 500;
    config.hotCacheCapacity = 0; // determinism mode
    InferenceServer server(graph, features, model.layers(), config);

    constexpr std::size_t kRequests = 64;
    DenseMatrix served(kRequests, server.outFeatures());
    std::thread consumer([&server] { server.run(); });
    for (std::size_t i = 0; i < kRequests; ++i) {
        InferenceRequest req = makeRequest(
            i, static_cast<VertexId>((i * 37) % graph.numVertices()));
        req.out = served.row(i);
        while (!server.queue().push(req))
            std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    server.queue().close();
    consumer.join();

    std::vector<Feature> replay(server.outFeatures());
    for (std::size_t i = 0; i < kRequests; ++i) {
        server.serveOne(i,
                        static_cast<VertexId>((i * 37) %
                                              graph.numVertices()),
                        replay.data());
        EXPECT_EQ(0, std::memcmp(served.row(i), replay.data(),
                                 replay.size() * sizeof(Feature)))
            << "request " << i
            << " served embedding differs from offline replay";
    }
    // run() served kRequests; the replay loop served them once more.
    EXPECT_EQ(server.stats().requestsServed, 2 * kRequests);
}

TEST(InferenceServer, CachedHubsStayWithinBoundedError)
{
    const CsrGraph graph = testGraph();
    DenseMatrix features(graph.numVertices(), 16);
    features.fillUniform(0.0f, 1.0f, 8);
    TestModel model(16);
    ServeConfig config;
    config.fanouts = {5, 5};
    config.maxBatch = 16;
    config.hotCacheCapacity = 64;
    InferenceServer server(graph, features, model.layers(), config);
    EXPECT_GE(server.hotDegreeThreshold(), 6u); // > max fanout

    constexpr std::size_t kRequests = 128;
    DenseMatrix served(kRequests, server.outFeatures());
    std::thread consumer([&server] { server.run(); });
    for (std::size_t i = 0; i < kRequests; ++i) {
        // Hammer a small popular set so hub destinations recur.
        InferenceRequest req = makeRequest(
            i, static_cast<VertexId>((i * 3) % 32));
        req.out = served.row(i);
        while (!server.queue().push(req))
            std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    server.queue().close();
    consumer.join();
    EXPECT_GT(server.stats().cache.hits, 0u);

    // The cached row swaps a sampled mean for the full-neighborhood
    // mean: same estimand, bounded deviation. Outputs must be finite
    // and within a loose relative L2 distance of the exact-replay
    // oracle.
    std::vector<Feature> replay(server.outFeatures());
    for (std::size_t i = 0; i < kRequests; ++i) {
        server.serveOne(i, static_cast<VertexId>((i * 3) % 32),
                        replay.data());
        double diff2 = 0.0;
        double norm2 = 0.0;
        for (std::size_t c = 0; c < replay.size(); ++c) {
            ASSERT_TRUE(std::isfinite(served.row(i)[c]));
            const double d = served.row(i)[c] - replay[c];
            diff2 += d * d;
            norm2 += replay[c] * replay[c];
        }
        EXPECT_LE(std::sqrt(diff2), 0.75 * std::sqrt(norm2) + 1e-3)
            << "request " << i << " deviates implausibly far";
    }
}

TEST(InferenceServer, CacheReducesGatherTraffic)
{
    const CsrGraph graph = testGraph();
    DenseMatrix features(graph.numVertices(), 16);
    features.fillUniform(0.0f, 1.0f, 9);
    TestModel modelOn(16);
    TestModel modelOff(16);

    const auto runWorkload = [&graph](InferenceServer &server) {
        constexpr std::size_t kRequests = 256;
        std::thread consumer([&server] { server.run(); });
        for (std::size_t i = 0; i < kRequests; ++i) {
            InferenceRequest req = makeRequest(
                i, static_cast<VertexId>((i * 5) % 24));
            while (!server.queue().push(req))
                std::this_thread::sleep_for(
                    std::chrono::microseconds(50));
        }
        server.queue().close();
        consumer.join();
        return server.stats();
    };

    ServeConfig on;
    on.fanouts = {5, 5};
    on.hotCacheCapacity = 128;
    ServeConfig off = on;
    off.hotCacheCapacity = 0;
    InferenceServer serverOn(graph, features, modelOn.layers(), on);
    InferenceServer serverOff(graph, features, modelOff.layers(), off);
    const auto statsOn = runWorkload(serverOn);
    const auto statsOff = runWorkload(serverOff);
    EXPECT_EQ(statsOn.requestsServed, statsOff.requestsServed);
    EXPECT_GT(statsOn.cache.hits, 0u);
    EXPECT_LT(statsOn.bytesGathered, statsOff.bytesGathered)
        << "hub caching must shrink aggregation gather traffic";
}

/** Allocation-free steady state: warm up, then a full run() drain. */
void
expectAllocFreeServing(Precision precision)
{
    const CsrGraph graph = testGraph();
    DenseMatrix features(graph.numVertices(), 16);
    features.fillUniform(0.0f, 1.0f, 10);
    TestModel model(16);
    ServeConfig config;
    config.fanouts = {5, 5};
    config.maxBatch = 16;
    config.latencyBudgetUs = 50;
    config.hotCacheCapacity = 64;
    config.precision = precision;
    InferenceServer server(graph, features, model.layers(), config);
    obs::MetricsRegistry::global().setEnabled(true);
    server.warmup();

    constexpr std::size_t kRequests = 128;
    DenseMatrix served(kRequests, server.outFeatures());
    for (std::size_t i = 0; i < kRequests; ++i) {
        InferenceRequest req = makeRequest(
            i, static_cast<VertexId>((i * 13) % graph.numVertices()));
        req.out = served.row(i);
        ASSERT_TRUE(server.queue().push(req));
    }
    server.queue().close();
    {
        ScopedAllocGuard guard("serve steady state");
        server.run();
        if (ScopedAllocGuard::interpositionActive()) {
            EXPECT_EQ(guard.allocations(), 0u)
                << "serving loop allocated after warmup";
        }
    }
    obs::MetricsRegistry::global().setEnabled(false);
    EXPECT_GE(server.stats().requestsServed, kRequests);
}

TEST(InferenceServer, SteadyStateServingIsAllocFreeFp32)
{
    expectAllocFreeServing(Precision::Fp32);
}

TEST(InferenceServer, SteadyStateServingIsAllocFreeBf16)
{
    expectAllocFreeServing(Precision::Bf16);
}

TEST(InferenceServer, LoadGeneratorReportsSaneNumbers)
{
    const CsrGraph graph = testGraph();
    DenseMatrix features(graph.numVertices(), 16);
    features.fillUniform(0.0f, 1.0f, 11);
    TestModel model(16);
    ServeConfig config;
    config.fanouts = {5, 5};
    config.maxBatch = 16;
    config.latencyBudgetUs = 100;
    config.hotCacheCapacity = 64;
    InferenceServer server(graph, features, model.layers(), config);
    serve::LoadGenConfig load;
    load.numRequests = 500;
    load.warmupRequests = 100;
    load.offeredQps = 50000.0;
    load.zipfExponent = 0.9;
    const serve::LoadGenReport report =
        serve::runServeLoad(server, load);
    EXPECT_GT(report.qps, 0.0);
    EXPECT_GE(report.p99Us, report.p50Us);
    EXPECT_GE(report.cacheHitRate, 0.0);
    EXPECT_LE(report.cacheHitRate, 1.0);
    EXPECT_GT(report.bytesGathered, 0u);
    EXPECT_EQ(report.accepted + report.dropped, 500u);
}

} // namespace
} // namespace graphite
