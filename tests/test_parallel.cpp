/**
 * @file
 * Unit tests for the thread pool and dynamic parallel loops.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/thread_pool.h"

namespace graphite {
namespace {

TEST(ThreadPool, RunsBodyOnEveryWorker)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(4);
    pool.runOnAll([&](std::size_t tid) { hits[tid]++; });
    for (const auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobs)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int round = 0; round < 10; ++round)
        pool.runOnAll([&](std::size_t) { count++; });
    EXPECT_EQ(count.load(), 30);
}

TEST(ThreadPool, SingleThreadedPoolRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.numThreads(), 1u);
    bool ran = false;
    pool.runOnAll([&](std::size_t tid) {
        EXPECT_EQ(tid, 0u);
        ran = true;
    });
    EXPECT_TRUE(ran);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce)
{
    ThreadPool pool(4);
    const std::size_t n = 10007; // prime, not a chunk multiple
    std::vector<std::atomic<int>> touched(n);
    pool.parallelForChunked(0, n, 64,
                            [&](std::size_t begin, std::size_t end,
                                std::size_t) {
        for (std::size_t i = begin; i < end; ++i)
            touched[i]++;
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(touched[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop)
{
    ThreadPool pool(2);
    bool called = false;
    pool.parallelForChunked(5, 5, 8,
                            [&](std::size_t, std::size_t, std::size_t) {
        called = true;
    });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, DynamicSchedulingBalancesSkewedWork)
{
    // One chunk is 100x heavier; dynamic scheduling must let other
    // workers take the remaining chunks (we can only verify coverage
    // and completion here, not wall-clock, on arbitrary hosts).
    ThreadPool pool(4);
    std::atomic<long> total{0};
    pool.parallelForChunked(0, 64, 1,
                            [&](std::size_t begin, std::size_t,
                                std::size_t) {
        long spin = begin == 0 ? 100000 : 1000;
        long acc = 0;
        for (long i = 0; i < spin; ++i)
            acc += i;
        total += acc > 0 ? 1 : 0;
    });
    EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, ChunkBoundsRespectEnd)
{
    ThreadPool pool(2);
    std::atomic<std::size_t> maxEnd{0};
    pool.parallelForChunked(0, 100, 33,
                            [&](std::size_t, std::size_t end,
                                std::size_t) {
        std::size_t prev = maxEnd.load();
        while (end > prev && !maxEnd.compare_exchange_weak(prev, end)) {
        }
    });
    EXPECT_EQ(maxEnd.load(), 100u);
}

TEST(GlobalPool, ParallelForSumMatchesSerial)
{
    const std::size_t n = 5000;
    std::vector<long> values(n);
    std::iota(values.begin(), values.end(), 0);
    std::atomic<long> sum{0};
    parallelFor(0, n, 128,
                [&](std::size_t begin, std::size_t end, std::size_t) {
        long local = 0;
        for (std::size_t i = begin; i < end; ++i)
            local += values[i];
        sum += local;
    });
    EXPECT_EQ(sum.load(), static_cast<long>(n * (n - 1) / 2));
}

TEST(GlobalPool, ThreadIdWithinRange)
{
    const std::size_t workers = ThreadPool::global().numThreads();
    std::atomic<bool> ok{true};
    parallelFor(0, 1000, 10,
                [&](std::size_t, std::size_t, std::size_t tid) {
        if (tid >= workers)
            ok = false;
    });
    EXPECT_TRUE(ok.load());
}

} // namespace
} // namespace graphite
