/**
 * @file
 * Unit tests for the thread pool and dynamic parallel loops.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "parallel/thread_pool.h"

namespace graphite {
namespace {

TEST(ThreadPool, RunsBodyOnEveryWorker)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(4);
    pool.runOnAll([&](std::size_t tid) { hits[tid]++; });
    for (const auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobs)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int round = 0; round < 10; ++round)
        pool.runOnAll([&](std::size_t) { count++; });
    EXPECT_EQ(count.load(), 30);
}

TEST(ThreadPool, SingleThreadedPoolRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.numThreads(), 1u);
    bool ran = false;
    pool.runOnAll([&](std::size_t tid) {
        EXPECT_EQ(tid, 0u);
        ran = true;
    });
    EXPECT_TRUE(ran);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce)
{
    ThreadPool pool(4);
    const std::size_t n = 10007; // prime, not a chunk multiple
    std::vector<std::atomic<int>> touched(n);
    pool.parallelForChunked(0, n, 64,
                            [&](std::size_t begin, std::size_t end,
                                std::size_t) {
        for (std::size_t i = begin; i < end; ++i)
            touched[i]++;
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(touched[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop)
{
    ThreadPool pool(2);
    bool called = false;
    pool.parallelForChunked(5, 5, 8,
                            [&](std::size_t, std::size_t, std::size_t) {
        called = true;
    });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, DynamicSchedulingBalancesSkewedWork)
{
    // One chunk is 100x heavier; dynamic scheduling must let other
    // workers take the remaining chunks (we can only verify coverage
    // and completion here, not wall-clock, on arbitrary hosts).
    ThreadPool pool(4);
    std::atomic<long> total{0};
    pool.parallelForChunked(0, 64, 1,
                            [&](std::size_t begin, std::size_t,
                                std::size_t) {
        long spin = begin == 0 ? 100000 : 1000;
        long acc = 0;
        for (long i = 0; i < spin; ++i)
            acc += i;
        total += acc > 0 ? 1 : 0;
    });
    EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, ChunkBoundsRespectEnd)
{
    ThreadPool pool(2);
    std::atomic<std::size_t> maxEnd{0};
    pool.parallelForChunked(0, 100, 33,
                            [&](std::size_t, std::size_t end,
                                std::size_t) {
        std::size_t prev = maxEnd.load();
        while (end > prev && !maxEnd.compare_exchange_weak(prev, end)) {
        }
    });
    EXPECT_EQ(maxEnd.load(), 100u);
}

TEST(ThreadPool, ZeroChunkIsClampedNotFatal)
{
    ThreadPool pool(2);
    const std::size_t n = 37;
    std::vector<std::atomic<int>> touched(n);
    pool.parallelForChunked(0, n, 0,
                            [&](std::size_t begin, std::size_t end,
                                std::size_t) {
        for (std::size_t i = begin; i < end; ++i)
            touched[i]++;
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(touched[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, RunOnAllPropagatesWorkerException)
{
    ThreadPool pool(4);
    // Every worker throws; exactly one exception must reach the caller,
    // on the calling thread.
    EXPECT_THROW(
        pool.runOnAll([](std::size_t tid) {
            throw std::runtime_error("worker " + std::to_string(tid));
        }),
        std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesExceptionAndStopsEarly)
{
    ThreadPool pool(4);
    std::atomic<int> chunksAfterThrow{0};
    std::atomic<bool> thrown{false};
    EXPECT_THROW(
        pool.parallelForChunked(0, 1 << 20, 1,
                                [&](std::size_t begin, std::size_t,
                                    std::size_t) {
            if (thrown.load())
                chunksAfterThrow++;
            if (begin == 0) {
                thrown = true;
                throw std::runtime_error("boom");
            }
        }),
        std::runtime_error);
    // The throwing chunk parks the cursor, so the million-iteration
    // range must not have been walked to completion afterwards.
    EXPECT_LT(chunksAfterThrow.load(), 1 << 19);
}

TEST(ThreadPool, UsableAfterWorkerException)
{
    ThreadPool pool(3);
    EXPECT_THROW(
        pool.runOnAll([](std::size_t) {
            throw std::logic_error("once");
        }),
        std::logic_error);
    // The pool must stay fully functional: the stored exception was
    // consumed and workers are back on the condition variable.
    std::atomic<int> count{0};
    pool.parallelForChunked(0, 1000, 7,
                            [&](std::size_t begin, std::size_t end,
                                std::size_t) {
        count += static_cast<int>(end - begin);
    });
    EXPECT_EQ(count.load(), 1000);
    std::vector<std::atomic<int>> hits(3);
    pool.runOnAll([&](std::size_t tid) { hits[tid]++; });
    for (const auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(GlobalPool, ParallelForSumMatchesSerial)
{
    const std::size_t n = 5000;
    std::vector<long> values(n);
    std::iota(values.begin(), values.end(), 0);
    std::atomic<long> sum{0};
    parallelFor(0, n, 128,
                [&](std::size_t begin, std::size_t end, std::size_t) {
        long local = 0;
        for (std::size_t i = begin; i < end; ++i)
            local += values[i];
        sum += local;
    });
    EXPECT_EQ(sum.load(), static_cast<long>(n * (n - 1) / 2));
}

TEST(GlobalPool, ThreadIdWithinRange)
{
    const std::size_t workers = ThreadPool::global().numThreads();
    std::atomic<bool> ok{true};
    parallelFor(0, 1000, 10,
                [&](std::size_t, std::size_t, std::size_t tid) {
        if (tid >= workers)
            ok = false;
    });
    EXPECT_TRUE(ok.load());
}

} // namespace
} // namespace graphite
