/**
 * @file
 * Tests of neighborhood sampling and mini-batch construction (paper
 * Section 2.1, the Figure 2 workload).
 */

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"
#include "sampling/neighbor_sampler.h"

namespace graphite {
namespace {

TEST(Sampler, FanoutBoundsSampledDegree)
{
    CsrGraph g = generateBarabasiAlbert(500, 6, 61);
    Rng rng(1);
    std::vector<VertexId> seeds = {0, 1, 2, 3, 4};
    MiniBatch batch = sampleMiniBatch(g, seeds, {5, 5}, rng);
    ASSERT_EQ(batch.blocks.size(), 2u);
    for (const SampledBlock &block : batch.blocks) {
        for (VertexId d = 0; d < block.block.numVertices(); ++d)
            EXPECT_LE(block.block.degree(d), 5u);
    }
}

TEST(Sampler, LowDegreeVerticesKeepAllNeighbors)
{
    CsrGraph g = generateRing(32); // degree 2 everywhere
    Rng rng(2);
    MiniBatch batch = sampleMiniBatch(g, {7}, {10}, rng);
    const SampledBlock &block = batch.blocks[0];
    ASSERT_EQ(block.dstVertices.size(), 1u);
    EXPECT_EQ(block.block.degree(0), 2u);
}

TEST(Sampler, OutermostDstsAreTheSeeds)
{
    CsrGraph g = generateErdosRenyi(200, 2000, false, 62);
    Rng rng(3);
    std::vector<VertexId> seeds = {10, 20, 30};
    MiniBatch batch = sampleMiniBatch(g, seeds, {4, 4, 4}, rng);
    EXPECT_EQ(batch.blocks.back().dstVertices, seeds);
}

TEST(Sampler, LayersChainSrcToDst)
{
    CsrGraph g = generateErdosRenyi(300, 4000, false, 63);
    Rng rng(4);
    MiniBatch batch = sampleMiniBatch(g, {1, 2}, {3, 3}, rng);
    // Inner layer's destination set == outer layer's source set.
    EXPECT_EQ(batch.blocks[0].dstVertices, batch.blocks[1].srcVertices);
}

TEST(Sampler, LocalIndicesAreConsistent)
{
    CsrGraph g = generateErdosRenyi(100, 1500, false, 64);
    Rng rng(5);
    MiniBatch batch = sampleMiniBatch(g, {5, 6, 7}, {4}, rng);
    const SampledBlock &block = batch.blocks[0];
    // The block CSR has one row per *source* so local ids address it
    // directly, but only the first |dst| rows may carry edges.
    ASSERT_EQ(block.block.numVertices(), block.srcVertices.size());
    for (VertexId v = block.dstVertices.size();
         v < block.block.numVertices(); ++v)
        EXPECT_TRUE(block.block.neighbors(v).empty());
    // Every sampled edge must point at a valid local source, and the
    // global edge (dst -> src) must exist in the original graph.
    for (VertexId d = 0; d < block.dstVertices.size(); ++d) {
        const VertexId globalDst = block.dstVertices[d];
        for (VertexId localSrc : block.block.neighbors(d)) {
            ASSERT_LT(localSrc, block.srcVertices.size());
            const VertexId globalSrc = block.srcVertices[localSrc];
            auto neighbors = g.neighbors(globalDst);
            EXPECT_TRUE(std::find(neighbors.begin(), neighbors.end(),
                                  globalSrc) != neighbors.end());
        }
    }
}

TEST(Sampler, SampledNeighborsAreDistinct)
{
    CsrGraph g = generateBarabasiAlbert(200, 8, 65);
    Rng rng(6);
    MiniBatch batch = sampleMiniBatch(g, {0}, {6}, rng);
    const SampledBlock &block = batch.blocks[0];
    std::set<VertexId> seen(block.block.neighbors(0).begin(),
                            block.block.neighbors(0).end());
    EXPECT_EQ(seen.size(), block.block.neighbors(0).size());
}

TEST(Sampler, GatherBatchFeaturesCopiesRows)
{
    CsrGraph g = generateRing(16);
    DenseMatrix features(16, 32);
    features.fillUniform(-1.0f, 1.0f, 66);
    std::vector<VertexId> vertices = {3, 9, 15};
    DenseMatrix gathered = gatherBatchFeatures(features, vertices);
    ASSERT_EQ(gathered.rows(), 3u);
    for (std::size_t i = 0; i < vertices.size(); ++i) {
        for (std::size_t c = 0; c < 32; ++c)
            EXPECT_EQ(gathered.at(i, c), features.at(vertices[i], c));
    }
}

TEST(Sampler, EpochBatchesPartitionAllVertices)
{
    CsrGraph g = generateErdosRenyi(1000, 5000, false, 67);
    Rng rng(7);
    auto batches = makeEpochBatches(g, 128, rng);
    std::set<VertexId> seen;
    for (const auto &batch : batches) {
        EXPECT_LE(batch.size(), 128u);
        for (VertexId v : batch) {
            EXPECT_TRUE(seen.insert(v).second) << "duplicate " << v;
        }
    }
    EXPECT_EQ(seen.size(), 1000u);
}

TEST(Sampler, SamplingIsSeedDeterministic)
{
    CsrGraph g = generateBarabasiAlbert(300, 5, 68);
    Rng rngA(9);
    Rng rngB(9);
    MiniBatch a = sampleMiniBatch(g, {1, 2, 3}, {4, 4}, rngA);
    MiniBatch b = sampleMiniBatch(g, {1, 2, 3}, {4, 4}, rngB);
    ASSERT_EQ(a.blocks.size(), b.blocks.size());
    for (std::size_t k = 0; k < a.blocks.size(); ++k) {
        EXPECT_EQ(a.blocks[k].srcVertices, b.blocks[k].srcVertices);
    }
}

TEST(Sampler, RequestSeedReplayReproducesTrees)
{
    // The serving contract: a request's tree is a pure function of its
    // id — Rng(requestSeed(id)) replays the exact tree later, no matter
    // what the scratch sampled in between or which scratch is used.
    CsrGraph g = generateBarabasiAlbert(400, 6, 91);
    const std::vector<VertexId> fanouts = {4, 3};
    SamplerScratch live(g.numVertices());
    SamplerScratch replay(g.numVertices());
    for (std::uint64_t id = 0; id < 16; ++id) {
        const VertexId seed = static_cast<VertexId>((id * 29) % 400);
        Rng rngLive(requestSeed(id));
        SampledTree treeLive;
        sampleTree(g, seed, fanouts, rngLive, live, treeLive);
        // Pollute the live scratch with unrelated work.
        Rng rngNoise(requestSeed(id ^ 0xabcdef));
        SampledTree noise;
        sampleTree(g, 7, fanouts, rngNoise, live, noise);
        Rng rngReplay(requestSeed(id));
        SampledTree treeReplay;
        sampleTree(g, seed, fanouts, rngReplay, replay, treeReplay);
        ASSERT_EQ(treeLive.blocks.size(), treeReplay.blocks.size());
        for (std::size_t k = 0; k < treeLive.blocks.size(); ++k) {
            EXPECT_EQ(treeLive.blocks[k].rowPtr,
                      treeReplay.blocks[k].rowPtr);
            EXPECT_EQ(treeLive.blocks[k].colIdx,
                      treeReplay.blocks[k].colIdx);
            EXPECT_EQ(treeLive.blocks[k].dstVertices,
                      treeReplay.blocks[k].dstVertices);
            EXPECT_EQ(treeLive.blocks[k].srcVertices,
                      treeReplay.blocks[k].srcVertices);
        }
    }
}

TEST(Sampler, RequestSeedDecorrelatesAdjacentIds)
{
    // Adjacent request ids must not sample correlated trees: check the
    // seeds differ in many bit positions (splitmix64 avalanche).
    int differingBits = 0;
    const std::uint64_t diff = requestSeed(100) ^ requestSeed(101);
    for (int b = 0; b < 64; ++b)
        differingBits += static_cast<int>((diff >> b) & 1u);
    EXPECT_GE(differingBits, 16);
    EXPECT_EQ(requestSeed(100), requestSeed(100));
}

} // namespace
} // namespace graphite
