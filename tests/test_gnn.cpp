/**
 * @file
 * Tests of the GNN layer/model: transposed-spec correctness, numerical
 * gradient checks of the full backward pass, technique-equivalence of
 * the forward pass, and training convergence.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "gnn/gnn_model.h"
#include "gnn/trainer.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "tensor/row_ops.h"

namespace graphite {
namespace {

CsrGraph
testGraph()
{
    return generateErdosRenyi(60, 400, false, 41);
}

TEST(TransposeSpec, FactorsFollowEdgesAcrossTransposition)
{
    CsrGraph g = testGraph();
    CsrGraph t = g.transposed();
    AggregationSpec spec = gcnSpec(g);
    AggregationSpec tSpec = transposeSpec(g, spec, t);

    // For every original edge v->u with factor f, the transposed graph
    // must contain edge u->v carrying the same factor.
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        for (EdgeId e = g.rowBegin(v); e < g.rowEnd(v); ++e) {
            const VertexId u = g.colIdx()[e];
            bool found = false;
            for (EdgeId te = t.rowBegin(u); te < t.rowEnd(u); ++te) {
                if (t.colIdx()[te] == v &&
                    std::abs(tSpec.edgeFactors[te] -
                             spec.edgeFactors[e]) < 1e-7f) {
                    found = true;
                    break;
                }
            }
            EXPECT_TRUE(found) << "edge " << v << "->" << u;
        }
    }
}

TEST(TransposeSpec, TransposedAggregationIsAdjointOfForward)
{
    // <Agg(x), y> == <x, Aggᵀ(y)> for all x, y — the defining property
    // the backward pass relies on.
    CsrGraph g = testGraph();
    CsrGraph t = g.transposed();
    AggregationSpec spec = gcnSpec(g);
    AggregationSpec tSpec = transposeSpec(g, spec, t);

    DenseMatrix x(g.numVertices(), 8);
    DenseMatrix y(g.numVertices(), 8);
    x.fillUniform(-1.0f, 1.0f, 42);
    y.fillUniform(-1.0f, 1.0f, 43);

    DenseMatrix ax(g.numVertices(), 8);
    DenseMatrix aty(g.numVertices(), 8);
    aggregateBasic(g, x, ax, spec);
    aggregateBasic(t, y, aty, tSpec);

    double lhs = 0.0;
    double rhs = 0.0;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        for (std::size_t c = 0; c < 8; ++c) {
            lhs += double{ax.at(v, c)} * y.at(v, c);
            rhs += double{x.at(v, c)} * aty.at(v, c);
        }
    }
    EXPECT_NEAR(lhs, rhs, std::abs(lhs) * 1e-4 + 1e-4);
}

/**
 * Numerical gradient check of a one-layer GCN with softmax loss:
 * perturb a weight, re-run forward, compare the loss delta with the
 * analytic gradient.
 */
TEST(GnnLayer, WeightGradientMatchesFiniteDifference)
{
    CsrGraph g = generateErdosRenyi(20, 100, false, 44);
    GnnModelConfig config;
    config.kind = GnnKind::Gcn;
    config.featureWidths = {6, 4};
    config.dropoutRate = 0.0; // determinism for the check
    GnnModel model(g, config);

    DenseMatrix features(g.numVertices(), 6);
    features.fillUniform(-1.0f, 1.0f, 45);
    std::vector<std::int32_t> labels(g.numVertices());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        labels[v] = static_cast<std::int32_t>(v % 4);

    TechniqueConfig tech;
    auto lossOf = [&]() {
        const DenseMatrix &logits = model.trainForward(features, tech);
        DenseMatrix grad(logits.rows(), logits.cols());
        return softmaxCrossEntropy(logits, labels, grad);
    };

    // Analytic gradients.
    const DenseMatrix &logits = model.trainForward(features, tech);
    DenseMatrix lossGrad(logits.rows(), logits.cols());
    softmaxCrossEntropy(logits, labels, lossGrad);
    model.trainBackward(lossGrad, tech);
    const DenseMatrix &analytic = model.layer(0).weightGrad();

    // Finite differences on a few weights.
    const float eps = 1e-3f;
    for (std::size_t r = 0; r < 3; ++r) {
        for (std::size_t c = 0; c < 2; ++c) {
            Feature &w = model.layer(0).weights().at(r, c);
            const Feature orig = w;
            w = orig + eps;
            const double lossPlus = lossOf();
            w = orig - eps;
            const double lossMinus = lossOf();
            w = orig;
            const double numeric = (lossPlus - lossMinus) / (2.0 * eps);
            EXPECT_NEAR(analytic.at(r, c), numeric,
                        5e-3 * std::max(1.0, std::abs(numeric)))
                << "weight (" << r << "," << c << ")";
        }
    }
}

TEST(GnnLayer, TwoLayerGradientMatchesFiniteDifference)
{
    CsrGraph g = generateErdosRenyi(16, 64, false, 46);
    GnnModelConfig config;
    config.kind = GnnKind::Sage;
    config.featureWidths = {5, 8, 3};
    config.dropoutRate = 0.0;
    GnnModel model(g, config);

    DenseMatrix features(g.numVertices(), 5);
    features.fillUniform(-1.0f, 1.0f, 47);
    std::vector<std::int32_t> labels(g.numVertices());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        labels[v] = static_cast<std::int32_t>(v % 3);

    TechniqueConfig tech;
    auto lossOf = [&]() {
        const DenseMatrix &logits = model.trainForward(features, tech);
        DenseMatrix grad(logits.rows(), logits.cols());
        return softmaxCrossEntropy(logits, labels, grad);
    };

    const DenseMatrix &logits = model.trainForward(features, tech);
    DenseMatrix lossGrad(logits.rows(), logits.cols());
    softmaxCrossEntropy(logits, labels, lossGrad);
    model.trainBackward(lossGrad, tech);
    // Check a first-layer weight — its gradient flows through the
    // ReLU, the second aggregation and the transposed aggregation.
    const DenseMatrix analytic = model.layer(0).weightGrad();

    const float eps = 1e-3f;
    for (std::size_t r = 0; r < 2; ++r) {
        Feature &w = model.layer(0).weights().at(r, 1);
        const Feature orig = w;
        w = orig + eps;
        const double lossPlus = lossOf();
        w = orig - eps;
        const double lossMinus = lossOf();
        w = orig;
        const double numeric = (lossPlus - lossMinus) / (2.0 * eps);
        EXPECT_NEAR(analytic.at(r, 1), numeric,
                    1e-2 * std::max(1.0, std::abs(numeric)));
    }
}

TEST(GnnModel, AllTechniquePathsProduceSameLogits)
{
    CsrGraph g = testGraph();
    GnnModelConfig config;
    config.featureWidths = {32, 48, 5};
    config.dropoutRate = 0.0;
    GnnModel model(g, config);
    DenseMatrix features(g.numVertices(), 32);
    features.fillUniform(-1.0f, 1.0f, 48);
    features.sparsify(0.5, 49); // give compression real zeros

    const DenseMatrix base =
        model.inference(features, TechniqueConfig::basic());
    for (const TechniqueConfig &tech :
         {TechniqueConfig::withFusion(), TechniqueConfig::withCompression(),
          TechniqueConfig::combined(),
          TechniqueConfig::combinedLocality()}) {
        const DenseMatrix out = model.inference(features, tech);
        EXPECT_LT(base.maxAbsDiff(out), 1e-3)
            << "technique " << tech.label();
    }
}

TEST(GnnModel, SageAndGcnDiffer)
{
    CsrGraph g = testGraph();
    GnnModelConfig gcn;
    gcn.kind = GnnKind::Gcn;
    gcn.featureWidths = {16, 4};
    GnnModelConfig sage = gcn;
    sage.kind = GnnKind::Sage;
    GnnModel a(g, gcn);
    GnnModel b(g, sage);
    DenseMatrix features(g.numVertices(), 16);
    features.fillUniform(0.1f, 1.0f, 50);
    const DenseMatrix outA = a.inference(features,
                                         TechniqueConfig::basic());
    const DenseMatrix outB = b.inference(features,
                                         TechniqueConfig::basic());
    EXPECT_GT(outA.maxAbsDiff(outB), 1e-4);
}

TEST(GnnModel, DeepNetworksTrainEndToEnd)
{
    // The paper motivates full-batch CPUs with "wider and deeper"
    // networks: a 4-layer stack must forward/backward cleanly with all
    // techniques enabled.
    CsrGraph g = generateBarabasiAlbert(200, 4, 57);
    GnnModelConfig config;
    config.featureWidths = {16, 32, 32, 32, 4};
    config.dropoutRate = 0.2;
    GnnModel model(g, config);
    EXPECT_EQ(model.numLayers(), 4u);
    DenseMatrix features(g.numVertices(), 16);
    features.fillUniform(-1.0f, 1.0f, 58);
    std::vector<std::int32_t> labels(g.numVertices());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        labels[v] = static_cast<std::int32_t>(v % 4);

    const TechniqueConfig tech = TechniqueConfig::combinedLocality();
    double first = 0.0;
    double last = 0.0;
    for (int epoch = 0; epoch < 8; ++epoch) {
        const DenseMatrix &logits = model.trainForward(features, tech);
        DenseMatrix grad(logits.rows(), logits.cols());
        const double loss = softmaxCrossEntropy(logits, labels, grad);
        if (epoch == 0)
            first = loss;
        last = loss;
        model.trainBackward(grad, tech);
        model.sgdStep(0.2f);
    }
    EXPECT_LT(last, first);
}

TEST(Trainer, LossDecreasesOnLearnableTask)
{
    CsrGraph g = generateBarabasiAlbert(300, 4, 51);
    SyntheticTask task = makeSyntheticTask(g, 4, 16, 0.2, 52);
    GnnModelConfig config;
    config.featureWidths = {16, 32, 4};
    config.dropoutRate = 0.1;
    GnnModel model(g, config);
    TrainerConfig tc;
    tc.epochs = 15;
    tc.learningRate = 0.3f;
    Trainer trainer(model, task.features, task.labels, tc);
    auto history = trainer.train();
    ASSERT_EQ(history.size(), 15u);
    EXPECT_LT(history.back().loss, history.front().loss * 0.8);
    EXPECT_GT(trainer.evaluate(), 0.5);
}

TEST(Trainer, CheckNumericsDetectsPoisonedWeights)
{
    CsrGraph g = generateBarabasiAlbert(120, 3, 61);
    SyntheticTask task = makeSyntheticTask(g, 4, 8, 0.2, 62);
    GnnModelConfig config;
    config.featureWidths = {8, 16, 4};

    // Clean run first: the sweep must not fire on healthy training.
    {
        GnnModel model(g, config);
        TrainerConfig tc;
        tc.checkNumerics = true;
        Trainer trainer(model, task.features, task.labels, tc);
        EXPECT_NO_THROW(trainer.trainEpoch());
    }

    // Poison one weight: the NaN propagates through the update-phase
    // GEMM into the logits, where the post-forward sweep catches it
    // before the epoch's stats are reported as if nothing happened.
    {
        GnnModel model(g, config);
        model.layer(0).weights().at(0, 0) =
            std::numeric_limits<float>::quiet_NaN();
        TrainerConfig tc;
        tc.checkNumerics = true;
        Trainer trainer(model, task.features, task.labels, tc);
        EXPECT_THROW(trainer.trainEpoch(), std::runtime_error);
    }

    // Off by default: the poisoned run completes (garbage loss, no
    // throw), which is exactly why the opt-in sweep exists.
    {
        GnnModel model(g, config);
        model.layer(0).weights().at(0, 0) =
            std::numeric_limits<float>::quiet_NaN();
        TrainerConfig tc;
        Trainer trainer(model, task.features, task.labels, tc);
        EXPECT_NO_THROW(trainer.trainEpoch());
    }
}

TEST(Trainer, TechniquesDoNotChangeTrainingTrajectory)
{
    // With dropout off, training with all techniques must follow the
    // same loss trajectory as the basic path (same math, same seeds).
    CsrGraph g = generateErdosRenyi(100, 700, false, 53);
    SyntheticTask task = makeSyntheticTask(g, 3, 8, 0.1, 54);

    auto runLosses = [&](const TechniqueConfig &tech) {
        GnnModelConfig config;
        config.featureWidths = {8, 16, 3};
        config.dropoutRate = 0.0;
        config.seed = 99;
        GnnModel model(g, config);
        TrainerConfig tc;
        tc.epochs = 5;
        tc.tech = tech;
        Trainer trainer(model, task.features, task.labels, tc);
        std::vector<double> losses;
        for (const auto &epoch : trainer.train())
            losses.push_back(epoch.loss);
        return losses;
    };

    const auto base = runLosses(TechniqueConfig::basic());
    const auto combined = runLosses(TechniqueConfig::combinedLocality());
    ASSERT_EQ(base.size(), combined.size());
    for (std::size_t i = 0; i < base.size(); ++i)
        EXPECT_NEAR(base[i], combined[i],
                    std::abs(base[i]) * 5e-3 + 5e-4);
}

TEST(SyntheticTask, LabelsCorrelateWithStructure)
{
    CsrGraph g = generateBarabasiAlbert(400, 3, 55);
    SyntheticTask task = makeSyntheticTask(g, 4, 8, 0.1, 56);
    // After label propagation, neighbors should agree more often than
    // the 25% random baseline.
    std::size_t agree = 0;
    std::size_t total = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        for (VertexId u : g.neighbors(v)) {
            agree += task.labels[v] == task.labels[u];
            ++total;
        }
    }
    EXPECT_GT(static_cast<double>(agree) / total, 0.4);
}

} // namespace
} // namespace graphite
