/**
 * @file
 * Tests for the tensor substrate: matrix storage/layout, all GEMM modes
 * against the naive reference, SpMM, and the row-wise operators.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <tuple>
#include <vector>

#include "graph/generators.h"
#include "kernels/aggregation.h"
#include "tensor/dense_matrix.h"
#include "tensor/gemm.h"
#include "tensor/row_ops.h"
#include "tensor/spmm.h"

namespace graphite {
namespace {

TEST(DenseMatrix, RowsAreCacheLineAligned)
{
    DenseMatrix m(5, 100);
    EXPECT_EQ(m.rowStride(), 112u); // 100 -> next multiple of 16
    for (std::size_t r = 0; r < m.rows(); ++r) {
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.row(r)) % 64, 0u);
    }
}

TEST(DenseMatrix, ExactMultipleNeedsNoPadding)
{
    DenseMatrix m(3, 256);
    EXPECT_EQ(m.rowStride(), 256u);
    EXPECT_EQ(m.rowBytes(), 1024u);
}

TEST(DenseMatrix, SparsityCountsLogicalElementsOnly)
{
    DenseMatrix m(4, 10);
    // All zero: fully sparse, regardless of padding.
    EXPECT_DOUBLE_EQ(m.sparsity(), 1.0);
    m.at(0, 0) = 1.0f;
    m.at(1, 5) = 2.0f;
    EXPECT_DOUBLE_EQ(m.sparsity(), 38.0 / 40.0);
}

TEST(DenseMatrix, SparsifyHitsTargetRate)
{
    DenseMatrix m(100, 128);
    m.fillUniform(0.5f, 1.5f, 7);
    m.sparsify(0.7, 11);
    EXPECT_NEAR(m.sparsity(), 0.7, 0.02);
}

TEST(DenseMatrix, FillUniformRespectsBounds)
{
    DenseMatrix m(10, 64);
    m.fillUniform(-2.0f, 3.0f, 5);
    for (std::size_t r = 0; r < m.rows(); ++r) {
        for (std::size_t c = 0; c < m.cols(); ++c) {
            EXPECT_GE(m.at(r, c), -2.0f);
            EXPECT_LT(m.at(r, c), 3.0f);
        }
    }
}

class GemmModes
    : public testing::TestWithParam<std::tuple<int, int, int, int>>
{
};

TEST_P(GemmModes, MatchesReference)
{
    const auto [modeInt, m, n, k] = GetParam();
    const auto mode = static_cast<GemmMode>(modeInt);
    DenseMatrix a;
    DenseMatrix b;
    switch (mode) {
      case GemmMode::NN:
        a = DenseMatrix(m, k);
        b = DenseMatrix(k, n);
        break;
      case GemmMode::NT:
        a = DenseMatrix(m, k);
        b = DenseMatrix(n, k);
        break;
      case GemmMode::TN:
        a = DenseMatrix(k, m);
        b = DenseMatrix(k, n);
        break;
    }
    a.fillUniform(-1.0f, 1.0f, 1);
    b.fillUniform(-1.0f, 1.0f, 2);
    DenseMatrix c(m, n);
    DenseMatrix expected(m, n);
    gemm(mode, a, b, c);
    gemmReference(mode, a, b, expected);
    EXPECT_LT(c.maxAbsDiff(expected), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmModes,
    testing::Combine(testing::Values(0, 1, 2),       // NN, NT, TN
                     testing::Values(1, 17, 64),     // M
                     testing::Values(8, 33),         // N
                     testing::Values(16, 100)));     // K

TEST(Gemm, AccumulateAddsToExisting)
{
    DenseMatrix a(4, 8);
    DenseMatrix b(8, 4);
    a.fillUniform(0.0f, 1.0f, 3);
    b.fillUniform(0.0f, 1.0f, 4);
    DenseMatrix c(4, 4);
    DenseMatrix once(4, 4);
    gemm(GemmMode::NN, a, b, once);
    gemm(GemmMode::NN, a, b, c);
    gemm(GemmMode::NN, a, b, c, GemmAccumulate::Add);
    for (std::size_t r = 0; r < 4; ++r) {
        for (std::size_t j = 0; j < 4; ++j)
            EXPECT_NEAR(c.at(r, j), 2.0f * once.at(r, j), 1e-4);
    }
}

TEST(GemmBlockSerial, MatchesWholeMatrixGemm)
{
    const std::size_t rows = 16;
    const std::size_t k = 48;
    const std::size_t n = 32;
    DenseMatrix a(rows, k);
    DenseMatrix w(k, n);
    a.fillUniform(-1.0f, 1.0f, 5);
    w.fillUniform(-1.0f, 1.0f, 6);
    DenseMatrix expected(rows, n);
    gemm(GemmMode::NN, a, w, expected);
    DenseMatrix c(rows, n);
    gemmBlockSerial(a.row(0), rows, a.rowStride(), w, c.row(0),
                    c.rowStride(), k);
    EXPECT_LT(c.maxAbsDiff(expected), 1e-4);
}

/**
 * Build the mode-appropriate operand shapes for an M x N = f(K) GEMM.
 */
void
makeOperands(GemmMode mode, std::size_t m, std::size_t n, std::size_t k,
             DenseMatrix &a, DenseMatrix &b)
{
    switch (mode) {
      case GemmMode::NN:
        a = DenseMatrix(m, k);
        b = DenseMatrix(k, n);
        break;
      case GemmMode::NT:
        a = DenseMatrix(m, k);
        b = DenseMatrix(n, k);
        break;
      case GemmMode::TN:
        a = DenseMatrix(k, m);
        b = DenseMatrix(k, n);
        break;
    }
    a.fillUniform(-1.0f, 1.0f, 21);
    b.fillUniform(-1.0f, 1.0f, 22);
}

class GemmPackedSweep
    : public testing::TestWithParam<std::tuple<int, int>>
{
};

/**
 * Ragged-shape sweep around the micro-kernel's blocking parameters:
 * M around MR (8) and the tile height, N around NR (32) including
 * single-column, K around KC (128) including the empty product. Every
 * (mode, accumulate) pairing must match the naive reference.
 */
TEST_P(GemmPackedSweep, RaggedShapesMatchReference)
{
    const auto [modeInt, accInt] = GetParam();
    const auto mode = static_cast<GemmMode>(modeInt);
    const auto acc = static_cast<GemmAccumulate>(accInt);
    const std::size_t ms[] = {1, 7, 8, 9, 67};
    const std::size_t ns[] = {1, 31, 32, 33, 130};
    const std::size_t ks[] = {0, 1, 17, 129};
    for (std::size_t m : ms) {
        for (std::size_t n : ns) {
            for (std::size_t k : ks) {
                DenseMatrix a;
                DenseMatrix b;
                makeOperands(mode, m, n, k, a, b);
                DenseMatrix c(m, n);
                DenseMatrix expected(m, n);
                c.fillUniform(-1.0f, 1.0f, 23);
                expected = c;
                gemm(mode, a, b, c, acc);
                gemmReference(mode, a, b, expected, acc);
                EXPECT_LT(c.maxAbsDiff(expected), 1e-3)
                    << "m=" << m << " n=" << n << " k=" << k;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndAccumulate, GemmPackedSweep,
    testing::Combine(testing::Values(0, 1, 2),   // NN, NT, TN
                     testing::Values(0, 1)));    // Overwrite, Add

TEST(GemmPlan, ReuseAcrossCallsGivesIdenticalResults)
{
    DenseMatrix a1(37, 96);
    DenseMatrix a2(37, 96);
    DenseMatrix b(96, 70);
    a1.fillUniform(-1.0f, 1.0f, 31);
    a2.fillUniform(-1.0f, 1.0f, 32);
    b.fillUniform(-1.0f, 1.0f, 33);

    GemmPlan plan;
    plan.pack(GemmMode::NN, b);
    EXPECT_EQ(plan.k(), 96u);
    EXPECT_EQ(plan.n(), 70u);

    // The same plan driven repeatedly must be bit-identical to the
    // pack-internally path (they share one micro-kernel).
    DenseMatrix viaPlan(37, 70);
    DenseMatrix internal(37, 70);
    gemm(GemmMode::NN, a1, b, internal);
    for (int round = 0; round < 3; ++round) {
        gemm(GemmMode::NN, a1, plan, viaPlan);
        EXPECT_EQ(viaPlan.maxAbsDiff(internal), 0.0f) << round;
    }

    // And stays valid for a different left operand afterwards.
    DenseMatrix expected(37, 70);
    gemmReference(GemmMode::NN, a2, b, expected);
    gemm(GemmMode::NN, a2, plan, viaPlan);
    EXPECT_LT(viaPlan.maxAbsDiff(expected), 1e-3);
}

TEST(GemmPlan, ValidateAcceptsFreshPlanAndEmptyPlan)
{
    GemmPlan empty;
    EXPECT_EQ(empty.validate(), nullptr);

    DenseMatrix b(96, 70);
    b.fillUniform(-1.0f, 1.0f, 7);
    GemmPlan plan(GemmMode::NN, b);
    EXPECT_EQ(plan.validate(), nullptr);
    EXPECT_EQ(plan.validateFor(96, 70), nullptr);
}

TEST(GemmPlan, ValidateForRejectsShapeMismatch)
{
    DenseMatrix b(96, 70);
    b.fillUniform(-1.0f, 1.0f, 8);
    GemmPlan plan(GemmMode::NN, b);
    // A plan packed for one layer reused against another layer's
    // shapes: both the K and N disagreements must be caught before the
    // micro-kernel streams past the packed buffer.
    EXPECT_NE(plan.validateFor(95, 70), nullptr);
    EXPECT_NE(plan.validateFor(96, 71), nullptr);
    EXPECT_NE(plan.validateFor(70, 96), nullptr);
    // And the empty plan is never valid for a real GEMM.
    GemmPlan empty;
    EXPECT_NE(empty.validateFor(96, 70), nullptr);
}

TEST(DenseMatrix, CountNonFiniteFindsInjectedValues)
{
    DenseMatrix m(5, 7);
    m.fillUniform(-1.0f, 1.0f, 9);
    EXPECT_TRUE(m.allFinite());
    EXPECT_EQ(m.countNonFinite(), 0u);
    m.row(2)[3] = std::numeric_limits<Feature>::quiet_NaN();
    m.row(4)[0] = std::numeric_limits<Feature>::infinity();
    m.row(0)[6] = -std::numeric_limits<Feature>::infinity();
    EXPECT_FALSE(m.allFinite());
    EXPECT_EQ(m.countNonFinite(), 3u);
}

TEST(DenseMatrix, CountNonFiniteIgnoresPaddingLanes)
{
    // 7 columns pads to a 16-float stride; garbage in the pad lanes
    // must not count. Poison the first row's padding directly.
    DenseMatrix m(3, 7);
    m.zero();
    ASSERT_GT(m.rowStride(), m.cols());
    m.row(0)[m.cols()] = std::numeric_limits<Feature>::quiet_NaN();
    EXPECT_TRUE(m.allFinite());
}

TEST(GemmPlan, TransposedPackMatchesNtReference)
{
    DenseMatrix a(19, 40);
    DenseMatrix b(25, 40); // N x K, used transposed
    a.fillUniform(-1.0f, 1.0f, 41);
    b.fillUniform(-1.0f, 1.0f, 42);
    GemmPlan plan;
    plan.pack(GemmMode::NT, b);
    EXPECT_EQ(plan.k(), 40u);
    EXPECT_EQ(plan.n(), 25u);
    DenseMatrix c(19, 25);
    DenseMatrix expected(19, 25);
    gemm(GemmMode::NT, a, plan, c);
    gemmReference(GemmMode::NT, a, b, expected);
    EXPECT_LT(c.maxAbsDiff(expected), 1e-3);
}

TEST(GemmBlockSerial, PackedPlanMatchesUnpackedPath)
{
    const std::size_t rows = 13;
    const std::size_t k = 50;
    const std::size_t n = 33;
    DenseMatrix a(rows, k);
    DenseMatrix w(k, n);
    a.fillUniform(-1.0f, 1.0f, 51);
    w.fillUniform(-1.0f, 1.0f, 52);
    GemmPlan plan;
    plan.pack(GemmMode::NN, w);

    DenseMatrix viaPlan(rows, n);
    DenseMatrix expected(rows, n);
    gemmReference(GemmMode::NN, a, w, expected);
    gemmBlockSerial(a.row(0), rows, a.rowStride(), plan, viaPlan.row(0),
                    viaPlan.rowStride(), k);
    EXPECT_LT(viaPlan.maxAbsDiff(expected), 1e-3);

    // Single-row blocks (the DMA pipeline's shape) through the same plan.
    DenseMatrix rowwise(rows, n);
    for (std::size_t r = 0; r < rows; ++r) {
        gemmBlockSerial(a.row(r), 1, a.rowStride(), plan,
                        rowwise.row(r), rowwise.rowStride(), k);
    }
    EXPECT_EQ(rowwise.maxAbsDiff(viaPlan), 0.0f);
}

TEST(Spmm, MatchesAggregationReference)
{
    CsrGraph g = generateErdosRenyi(200, 1500, false, 7);
    DenseMatrix h(200, 64);
    h.fillUniform(-1.0f, 1.0f, 8);
    AggregationSpec spec = gcnSpec(g);
    DenseMatrix viaSpmm(200, 64);
    DenseMatrix expected(200, 64);
    spmm(g, h, viaSpmm, spec.edgeFactors, spec.selfFactors);
    aggregateReference(g, h, expected, spec);
    EXPECT_LT(viaSpmm.maxAbsDiff(expected), 1e-4);
}

TEST(Spmm, UnweightedSumsNeighborsPlusSelf)
{
    CsrGraph g = generateRing(8);
    DenseMatrix h(8, 16);
    for (VertexId v = 0; v < 8; ++v)
        h.at(v, 0) = static_cast<Feature>(v + 1);
    DenseMatrix out(8, 16);
    spmm(g, h, out);
    // Vertex 0: self(1) + ring neighbors 1 and 7 -> 1 + 2 + 8 = 11.
    EXPECT_FLOAT_EQ(out.at(0, 0), 11.0f);
}

TEST(RowOps, ReluClampsNegatives)
{
    DenseMatrix x(3, 20);
    x.fillUniform(-1.0f, 1.0f, 9);
    DenseMatrix copy = x;
    reluForward(x);
    for (std::size_t r = 0; r < 3; ++r) {
        for (std::size_t c = 0; c < 20; ++c) {
            EXPECT_EQ(x.at(r, c), std::max(copy.at(r, c), 0.0f));
        }
    }
}

TEST(RowOps, ReluBackwardMasksByActivation)
{
    DenseMatrix act(2, 16);
    act.at(0, 0) = 1.0f; // active
    // act(0,1) == 0    -> clipped
    DenseMatrix grad(2, 16);
    grad.at(0, 0) = 5.0f;
    grad.at(0, 1) = 7.0f;
    reluBackward(act, grad);
    EXPECT_EQ(grad.at(0, 0), 5.0f);
    EXPECT_EQ(grad.at(0, 1), 0.0f);
}

TEST(RowOps, AddBiasBroadcastsAcrossRows)
{
    DenseMatrix x(4, 8);
    std::vector<Feature> bias(8);
    for (std::size_t c = 0; c < 8; ++c)
        bias[c] = static_cast<Feature>(c);
    addBias(x, bias);
    for (std::size_t r = 0; r < 4; ++r) {
        for (std::size_t c = 0; c < 8; ++c)
            EXPECT_EQ(x.at(r, c), static_cast<Feature>(c));
    }
}

TEST(RowOps, DropoutZerosAtRateAndScalesSurvivors)
{
    DenseMatrix x(200, 64);
    x.fillUniform(1.0f, 2.0f, 10);
    DenseMatrix orig = x;
    std::vector<std::uint64_t> mask;
    dropoutForward(x, 0.5, 11, mask);
    std::size_t zeros = 0;
    for (std::size_t r = 0; r < x.rows(); ++r) {
        for (std::size_t c = 0; c < x.cols(); ++c) {
            if (x.at(r, c) == 0.0f) {
                ++zeros;
            } else {
                EXPECT_NEAR(x.at(r, c), orig.at(r, c) * 2.0f, 1e-5);
            }
        }
    }
    EXPECT_NEAR(static_cast<double>(zeros) / (200 * 64), 0.5, 0.03);
}

TEST(RowOps, DropoutBackwardAppliesSameMask)
{
    DenseMatrix x(50, 32);
    x.fillUniform(1.0f, 2.0f, 12);
    std::vector<std::uint64_t> mask;
    dropoutForward(x, 0.4, 13, mask);
    DenseMatrix grad(50, 32);
    grad.fillUniform(1.0f, 1.0f, 0); // all ones
    dropoutBackward(grad, 0.4, mask);
    for (std::size_t r = 0; r < x.rows(); ++r) {
        for (std::size_t c = 0; c < x.cols(); ++c) {
            if (x.at(r, c) == 0.0f)
                EXPECT_EQ(grad.at(r, c), 0.0f);
            else
                EXPECT_NEAR(grad.at(r, c), 1.0f / 0.6f, 1e-5);
        }
    }
}

TEST(RowOps, SoftmaxCrossEntropyGradientSumsToZero)
{
    DenseMatrix logits(10, 4);
    logits.fillUniform(-1.0f, 1.0f, 14);
    std::vector<std::int32_t> labels(10);
    for (std::size_t i = 0; i < 10; ++i)
        labels[i] = static_cast<std::int32_t>(i % 4);
    DenseMatrix grad(10, 4);
    const double loss = softmaxCrossEntropy(logits, labels, grad);
    EXPECT_GT(loss, 0.0);
    // Each row's gradient sums to (sum softmax) - 1 = 0, over 1/N scale.
    for (std::size_t r = 0; r < 10; ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < 4; ++c)
            sum += grad.at(r, c);
        EXPECT_NEAR(sum, 0.0, 1e-6);
    }
}

/** Serial reference for the cross-entropy loss (no gradient). */
double
serialCrossEntropy(const DenseMatrix &logits,
                   std::span<const std::int32_t> labels,
                   const std::uint8_t *mask)
{
    double total = 0.0;
    std::size_t counted = 0;
    for (std::size_t r = 0; r < logits.rows(); ++r) {
        if (mask != nullptr && mask[r] == 0)
            continue;
        ++counted;
        const Feature *in = logits.row(r);
        Feature maxLogit = in[0];
        for (std::size_t c = 1; c < logits.cols(); ++c)
            maxLogit = std::max(maxLogit, in[c]);
        double denom = 0.0;
        for (std::size_t c = 0; c < logits.cols(); ++c)
            denom += std::exp(double{in[c]} - double{maxLogit});
        const auto label = static_cast<std::size_t>(labels[r]);
        const double p =
            std::exp(double{in[label]} - double{maxLogit}) / denom;
        total -= std::log(std::max(p, 1e-30));
    }
    return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

// Regression test: the parallel partial-loss reduction runs on pool
// worker threads, so every worker's contribution must land in the
// caller's scratch buffer (a function-local thread_local is NOT
// captured by reference — each worker would otherwise sum into its own
// instance and the result would drop their rows). Enough rows to span
// many 256-row chunks guarantees worker participation.
TEST(RowOps, SoftmaxCrossEntropyParallelReductionMatchesSerial)
{
    const std::size_t rows = 4096;
    const std::size_t classes = 8;
    DenseMatrix logits(rows, classes);
    logits.fillUniform(-2.0f, 2.0f, 21);
    std::vector<std::int32_t> labels(rows);
    for (std::size_t i = 0; i < rows; ++i)
        labels[i] = static_cast<std::int32_t>(i % classes);
    DenseMatrix grad(rows, classes);
    const double loss = softmaxCrossEntropy(logits, labels, grad);
    const double ref = serialCrossEntropy(logits, labels, nullptr);
    EXPECT_NEAR(loss, ref, 1e-9 * ref);
}

TEST(RowOps, SoftmaxCrossEntropyMaskedParallelReductionMatchesSerial)
{
    const std::size_t rows = 4096;
    const std::size_t classes = 8;
    DenseMatrix logits(rows, classes);
    logits.fillUniform(-2.0f, 2.0f, 22);
    std::vector<std::int32_t> labels(rows);
    std::vector<std::uint8_t> mask(rows);
    for (std::size_t i = 0; i < rows; ++i) {
        labels[i] = static_cast<std::int32_t>((i * 3) % classes);
        mask[i] = static_cast<std::uint8_t>(i % 5 != 0);
    }
    DenseMatrix grad(rows, classes);
    const double loss =
        softmaxCrossEntropyMasked(logits, labels, mask, grad);
    const double ref = serialCrossEntropy(logits, labels, mask.data());
    EXPECT_NEAR(loss, ref, 1e-9 * ref);
}

TEST(RowOps, PerfectLogitsGiveLowLossAndFullAccuracy)
{
    DenseMatrix logits(6, 3);
    std::vector<std::int32_t> labels = {0, 1, 2, 0, 1, 2};
    for (std::size_t r = 0; r < 6; ++r)
        logits.at(r, static_cast<std::size_t>(labels[r])) = 20.0f;
    DenseMatrix grad(6, 3);
    EXPECT_LT(softmaxCrossEntropy(logits, labels, grad), 1e-6);
    EXPECT_DOUBLE_EQ(accuracy(logits, labels), 1.0);
}

} // namespace
} // namespace graphite
