/**
 * @file
 * Unit tests for the graph substrate: CSR structure, builder semantics,
 * transposition, generators, statistics and edge-list I/O.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "graph/binary_io.h"
#include "graph/csr_graph.h"
#include "graph/datasets.h"
#include "graph/edge_list_io.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/graph_stats.h"

namespace graphite {
namespace {

CsrGraph
smallGraph()
{
    // 0 -> {1, 2}, 1 -> {2}, 2 -> {}, 3 -> {0}
    GraphBuilder builder(4);
    builder.addEdge(0, 1);
    builder.addEdge(0, 2);
    builder.addEdge(1, 2);
    builder.addEdge(3, 0);
    return builder.build();
}

TEST(CsrGraph, BasicAccessors)
{
    CsrGraph g = smallGraph();
    EXPECT_EQ(g.numVertices(), 4u);
    EXPECT_EQ(g.numEdges(), 4u);
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.degree(2), 0u);
    auto n0 = g.neighbors(0);
    ASSERT_EQ(n0.size(), 2u);
    EXPECT_EQ(n0[0], 1u);
    EXPECT_EQ(n0[1], 2u);
}

TEST(CsrGraph, RowsSortedAfterBuild)
{
    EXPECT_TRUE(smallGraph().rowsSorted());
}

TEST(CsrGraph, TransposeReversesEdges)
{
    CsrGraph g = smallGraph();
    CsrGraph t = g.transposed();
    EXPECT_EQ(t.numVertices(), g.numVertices());
    EXPECT_EQ(t.numEdges(), g.numEdges());
    // 2 has in-edges from 0 and 1.
    auto n2 = t.neighbors(2);
    std::set<VertexId> in2(n2.begin(), n2.end());
    EXPECT_EQ(in2, (std::set<VertexId>{0, 1}));
    // Double transpose is the identity.
    CsrGraph tt = t.transposed();
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        auto a = g.neighbors(v);
        auto b = tt.neighbors(v);
        ASSERT_EQ(a.size(), b.size());
        EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
    }
}

TEST(GraphBuilder, DeduplicatesAndStripsSelfLoops)
{
    GraphBuilder builder(3);
    builder.addEdge(0, 1);
    builder.addEdge(0, 1); // duplicate
    builder.addEdge(1, 1); // self loop
    builder.addEdge(2, 0);
    CsrGraph g = builder.build();
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_EQ(g.degree(0), 1u);
    EXPECT_EQ(g.degree(1), 0u);
}

TEST(GraphBuilder, UndirectedAddsBothDirections)
{
    GraphBuilder builder(3);
    builder.addUndirectedEdge(0, 2);
    CsrGraph g = builder.build();
    EXPECT_EQ(g.degree(0), 1u);
    EXPECT_EQ(g.degree(2), 1u);
    EXPECT_EQ(g.neighbors(0)[0], 2u);
    EXPECT_EQ(g.neighbors(2)[0], 0u);
}

TEST(Generators, RmatProducesRequestedScale)
{
    RmatParams params;
    params.scale = 10;
    params.avgDegree = 8.0;
    CsrGraph g = generateRmat(params);
    EXPECT_EQ(g.numVertices(), 1024u);
    // Dedup removes some edges; expect at least half the target.
    EXPECT_GT(g.numEdges(), 1024u * 4);
    EXPECT_LE(g.numEdges(), 1024u * 8);
}

TEST(Generators, RmatIsDeterministicPerSeed)
{
    RmatParams params;
    params.scale = 8;
    params.avgDegree = 4.0;
    params.seed = 42;
    CsrGraph a = generateRmat(params);
    CsrGraph b = generateRmat(params);
    ASSERT_EQ(a.numEdges(), b.numEdges());
    EXPECT_TRUE(std::equal(a.colIdx().begin(), a.colIdx().end(),
                           b.colIdx().begin()));
}

TEST(Generators, RmatSkewExceedsErdosRenyi)
{
    RmatParams params;
    params.scale = 12;
    params.avgDegree = 16.0;
    params.a = 0.6;
    GraphStats rmat = computeGraphStats(generateRmat(params));
    GraphStats er = computeGraphStats(
        generateErdosRenyi(1 << 12, 16ull << 12));
    // Power-law generator should have far higher degree variance.
    EXPECT_GT(rmat.degreeVariance, 4.0 * er.degreeVariance);
}

TEST(Generators, ErdosRenyiDegreesConcentrate)
{
    CsrGraph g = generateErdosRenyi(2000, 20000);
    GraphStats stats = computeGraphStats(g);
    EXPECT_NEAR(stats.avgDegree, 10.0, 1.0);
    EXPECT_LT(stats.maxDegree, 40u);
}

TEST(Generators, BarabasiAlbertConnectedAndSkewed)
{
    CsrGraph g = generateBarabasiAlbert(1000, 3);
    GraphStats stats = computeGraphStats(g);
    EXPECT_EQ(stats.numVertices, 1000u);
    EXPECT_GE(stats.avgDegree, 3.0);
    // Preferential attachment produces hubs.
    EXPECT_GT(stats.maxDegree, 30u);
    // Every vertex attached to something.
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_GT(g.degree(v), 0u);
}

TEST(Generators, RingHasUniformDegree)
{
    CsrGraph g = generateRing(64);
    for (VertexId v = 0; v < 64; ++v)
        EXPECT_EQ(g.degree(v), 2u);
}

TEST(GraphStats, MatchesHandComputedValues)
{
    CsrGraph g = smallGraph();
    GraphStats stats = computeGraphStats(g);
    EXPECT_EQ(stats.numVertices, 4u);
    EXPECT_EQ(stats.numEdges, 4u);
    EXPECT_DOUBLE_EQ(stats.avgDegree, 1.0);
    EXPECT_EQ(stats.maxDegree, 2u);
    // degrees: 2,1,0,1 -> var = (4+1+0+1)/4 - 1 = 0.5
    EXPECT_DOUBLE_EQ(stats.degreeVariance, 0.5);
}

TEST(EdgeListIo, RoundTripPreservesGraph)
{
    CsrGraph g = generateErdosRenyi(100, 500, false, 3);
    const std::string path = testing::TempDir() + "graphite_io_test.el";
    saveEdgeList(g, path);
    CsrGraph loaded = loadEdgeList(path, g.numVertices());
    ASSERT_EQ(loaded.numVertices(), g.numVertices());
    ASSERT_EQ(loaded.numEdges(), g.numEdges());
    EXPECT_TRUE(std::equal(g.colIdx().begin(), g.colIdx().end(),
                           loaded.colIdx().begin()));
    std::remove(path.c_str());
}

TEST(BinaryIo, CsrRoundTripPreservesGraph)
{
    CsrGraph g = generateRmat({.scale = 10, .avgDegree = 8.0});
    const std::string path = testing::TempDir() + "graphite_io_test.gcsr";
    saveCsr(g, path);
    EXPECT_TRUE(isCsrFile(path));
    CsrGraph loaded = loadCsr(path);
    ASSERT_EQ(loaded.numVertices(), g.numVertices());
    ASSERT_EQ(loaded.numEdges(), g.numEdges());
    EXPECT_TRUE(std::equal(g.rowPtr().begin(), g.rowPtr().end(),
                           loaded.rowPtr().begin()));
    EXPECT_TRUE(std::equal(g.colIdx().begin(), g.colIdx().end(),
                           loaded.colIdx().begin()));
    std::remove(path.c_str());
}

TEST(BinaryIo, RejectsForeignFiles)
{
    const std::string path = testing::TempDir() + "not_a_csr.bin";
    FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("definitely not CSR", f);
    std::fclose(f);
    EXPECT_FALSE(isCsrFile(path));
    std::remove(path.c_str());
}

TEST(Datasets, AllFourAnaloguesGenerate)
{
    for (DatasetId id : allDatasets()) {
        Dataset dataset = makeDataset(id, /*scaleShift=*/6);
        const DatasetSpec spec = datasetSpec(id);
        EXPECT_EQ(dataset.name, spec.name);
        EXPECT_EQ(dataset.graph.numVertices(),
                  VertexId{1} << (spec.scaleLog2 - 6));
        EXPECT_EQ(dataset.inputFeatures, spec.inputFeatures);
        GraphStats stats = computeGraphStats(dataset.graph);
        // Average degree within a factor of ~2 of spec after dedup.
        EXPECT_GT(stats.avgDegree, spec.avgDegree * 0.4);
        EXPECT_LT(stats.avgDegree, spec.avgDegree * 2.0);
    }
}

TEST(Datasets, ParseNamesRoundTrip)
{
    for (DatasetId id : allDatasets())
        EXPECT_EQ(parseDatasetName(datasetSpec(id).name), id);
}

TEST(CsrGraphValidate, AcceptsWellFormedArrays)
{
    CsrGraph g = smallGraph();
    EXPECT_EQ(g.validate(), nullptr);
    EXPECT_EQ(CsrGraph::validate(g.rowPtr(), g.colIdx()), nullptr);
    // The empty graph is valid in both representations: default
    // (both arrays empty) and explicit ({0}, {}).
    EXPECT_EQ(CsrGraph().validate(), nullptr);
    const std::vector<EdgeId> rowPtr = {0};
    EXPECT_EQ(CsrGraph::validate(rowPtr, {}), nullptr);
}

TEST(CsrGraphValidate, RejectsCorruptedRowPtr)
{
    CsrGraph g = smallGraph();
    // Start offset shifted: rowPtr no longer begins at 0.
    std::vector<EdgeId> rowPtr(g.rowPtr().begin(), g.rowPtr().end());
    std::vector<VertexId> colIdx(g.colIdx().begin(), g.colIdx().end());
    rowPtr.front() = 1;
    EXPECT_NE(CsrGraph::validate(rowPtr, colIdx), nullptr);

    // Truncated tail: rowPtr.back() disagrees with |E|.
    rowPtr.assign(g.rowPtr().begin(), g.rowPtr().end());
    rowPtr.back() = colIdx.size() + 1;
    EXPECT_NE(CsrGraph::validate(rowPtr, colIdx), nullptr);

    // A bit flip that makes an interior offset run backwards.
    rowPtr.assign(g.rowPtr().begin(), g.rowPtr().end());
    std::swap(rowPtr[1], rowPtr[2]);
    ASSERT_GT(rowPtr[1], rowPtr[2]); // swap actually de-sorted it
    EXPECT_NE(CsrGraph::validate(rowPtr, colIdx), nullptr);

    // Missing the |V|+1 sentinel entirely.
    EXPECT_NE(CsrGraph::validate({}, colIdx), nullptr);
}

TEST(CsrGraphValidate, RejectsOutOfRangeNeighbor)
{
    CsrGraph g = smallGraph();
    std::vector<EdgeId> rowPtr(g.rowPtr().begin(), g.rowPtr().end());
    std::vector<VertexId> colIdx(g.colIdx().begin(), g.colIdx().end());
    colIdx[1] = g.numVertices(); // first id past the valid range
    EXPECT_NE(CsrGraph::validate(rowPtr, colIdx), nullptr);
}

TEST(CsrGraph, EmptyGraphTransposesToEmpty)
{
    CsrGraph g;
    EXPECT_EQ(g.numVertices(), 0u);
    EXPECT_EQ(g.numEdges(), 0u);
    EXPECT_TRUE(g.rowsSorted());
    CsrGraph t = g.transposed();
    EXPECT_EQ(t.numVertices(), 0u);
    EXPECT_EQ(t.numEdges(), 0u);
    EXPECT_EQ(t.validate(), nullptr);
}

TEST(CsrGraph, IsolatedVerticesSurviveTranspose)
{
    // 5 vertices, edges only between 1 and 3; 0, 2, 4 are isolated.
    GraphBuilder builder(5);
    builder.addEdge(1, 3);
    CsrGraph g = builder.build();
    EXPECT_EQ(g.degree(0), 0u);
    EXPECT_EQ(g.degree(2), 0u);
    EXPECT_EQ(g.degree(4), 0u);
    EXPECT_TRUE(g.rowsSorted());
    CsrGraph t = g.transposed();
    EXPECT_EQ(t.numVertices(), 5u);
    EXPECT_EQ(t.degree(3), 1u);
    EXPECT_EQ(t.neighbors(3)[0], 1u);
    EXPECT_EQ(t.degree(0), 0u);
    EXPECT_EQ(t.degree(4), 0u);
    EXPECT_EQ(t.validate(), nullptr);
}

TEST(CsrGraph, SelfLoopsAreTheirOwnTranspose)
{
    // GraphBuilder strips self loops, so build the CSR directly:
    // 0 -> {0, 1}, 1 -> {1}, 2 -> {}.
    CsrGraph g({0, 2, 3, 3}, {0, 1, 1});
    EXPECT_EQ(g.validate(), nullptr);
    EXPECT_TRUE(g.rowsSorted());
    CsrGraph t = g.transposed();
    // Self loops stay in place; 0 -> 1 reverses.
    EXPECT_EQ(t.degree(0), 1u);
    EXPECT_EQ(t.neighbors(0)[0], 0u);
    EXPECT_EQ(t.degree(1), 2u);
    CsrGraph tt = t.transposed();
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        auto a = g.neighbors(v);
        auto b = tt.neighbors(v);
        ASSERT_EQ(a.size(), b.size());
        EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
    }
}

TEST(CsrGraph, DuplicateEdgesKeptInDirectConstruction)
{
    // A multigraph row: 0 -> {1, 1, 1}. degree() is EdgeId-typed so
    // duplicate-heavy rows cannot truncate.
    CsrGraph g({0, 3, 3}, {1, 1, 1});
    EXPECT_EQ(g.validate(), nullptr);
    EXPECT_EQ(g.numEdges(), 3u);
    EXPECT_EQ(g.degree(0), 3u);
    EXPECT_TRUE(g.rowsSorted());
    CsrGraph t = g.transposed();
    EXPECT_EQ(t.degree(1), 3u);
    auto n1 = t.neighbors(1);
    for (VertexId u : n1)
        EXPECT_EQ(u, 0u);
}

TEST(CsrGraph, UnsortedRowDetected)
{
    CsrGraph g({0, 2, 2}, {1, 0});
    EXPECT_EQ(g.validate(), nullptr); // valid CSR, just unsorted
    EXPECT_FALSE(g.rowsSorted());
}

} // namespace
} // namespace graphite
